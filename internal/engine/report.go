package engine

import (
	"fmt"
	"io"
	"strings"

	"veritas/internal/abduction"
)

// reportMetrics are the fleet-report rows: query key, label, extractor,
// and the multiplier applied for display (rebuffering is shown in
// percent). The key is the spelling the /v1 query surface accepts.
var reportMetrics = []struct {
	key   string
	label string
	fn    abduction.MetricFn
	scale float64
	slack float64 // coverage slack in the metric's native unit
}{
	{"ssim", "SSIM", abduction.MetricSSIM, 1, 0.002},
	{"rebuf", "rebuf %", abduction.MetricRebufRatio, 100, 0.005},
	{"bitrate", "bitrate Mbps", abduction.MetricAvgBitrate, 1, 0.1},
}

var reportEstimators = []ArmEstimator{EstTruth, EstBaseline, EstVeritasLow, EstVeritasHigh}

// MetricAggregate is one metric's fleet aggregate for one arm: a
// Summary per estimator, plus truth coverage of the Veritas range when
// oracle outcomes are present.
type MetricAggregate struct {
	Metric        string
	Estimators    map[ArmEstimator]Summary
	Coverage      *float64 `json:",omitempty"`
	CoverageSlack float64  `json:",omitempty"`
}

// ArmAggregate is one arm's block of metric aggregates.
type ArmAggregate struct {
	Arm     string
	Metrics []MetricAggregate
}

// Report is the serializable aggregate of a corpus — what cmd/serve
// returns as JSON and what the determinism tests compare byte-for-byte
// between the in-RAM and store-backed aggregation paths. It carries no
// wall-clock or worker-count fields, so equal corpora produce equal
// reports however they were computed.
type Report struct {
	Sessions    int
	Arms        []ArmAggregate
	Predictions *Summary `json:",omitempty"`
}

// Report computes the aggregate report over everything recorded so
// far. One snapshot of the rows feeds every series, so the cost of a
// report is a handful of passes over the corpus, not a copy per
// (arm, metric, estimator) cell.
func (a *Aggregator) Report() *Report {
	rows := a.snapshot()
	rep := &Report{Sessions: len(rows)}
	for _, arm := range armNamesOf(rows) {
		ar := ArmAggregate{Arm: arm}
		for _, m := range reportMetrics {
			ma := MetricAggregate{Metric: m.label, Estimators: map[ArmEstimator]Summary{}}
			for _, est := range reportEstimators {
				if s := Summarize(seriesOf(rows, arm, est, m.fn)); s.N > 0 {
					ma.Estimators[est] = s
				}
			}
			if _, ok := ma.Estimators[EstTruth]; ok {
				c := coverageOf(rows, arm, m.fn, m.slack)
				ma.Coverage = &c
				ma.CoverageSlack = m.slack
			}
			ar.Metrics = append(ar.Metrics, ma)
		}
		rep.Arms = append(rep.Arms, ar)
	}
	if preds := predictionsOf(rows); len(preds) > 0 {
		s := Summarize(preds)
		rep.Predictions = &s
	}
	return rep
}

// WriteAggregate renders the aggregate blocks as aligned text: one
// block per what-if arm with mean/percentile rows for every metric and
// estimator plus truth coverage, then the interventional-prediction
// summary. It is the body shared by Result.WriteReport and the
// store-backed report path in cmd/fleet.
func (a *Aggregator) WriteAggregate(w io.Writer) error {
	var b strings.Builder
	rows := a.snapshot()
	for _, arm := range armNamesOf(rows) {
		fmt.Fprintf(&b, "\n-- arm: %s --\n", arm)
		fmt.Fprintf(&b, "%-14s %-13s %9s %9s %9s %9s %9s\n",
			"metric", "estimator", "mean", "P10", "P50", "P90", "max")
		for _, m := range reportMetrics {
			for _, est := range reportEstimators {
				s := Summarize(seriesOf(rows, arm, est, m.fn))
				if s.N == 0 {
					continue
				}
				fmt.Fprintf(&b, "%-14s %-13s %9.4g %9.4g %9.4g %9.4g %9.4g\n",
					m.label, est, s.Mean*m.scale, s.P10*m.scale, s.P50*m.scale, s.P90*m.scale, s.Max*m.scale)
			}
		}
		for _, m := range reportMetrics {
			if len(seriesOf(rows, arm, EstTruth, m.fn)) == 0 {
				continue
			}
			fmt.Fprintf(&b, "coverage: truth inside Veritas range (±%g) on %.0f%% of sessions [%s]\n",
				m.slack, coverageOf(rows, arm, m.fn, m.slack)*100, m.label)
		}
	}

	if preds := predictionsOf(rows); len(preds) > 0 {
		s := Summarize(preds)
		fmt.Fprintf(&b, "\n-- interventional download-time predictions --\n")
		fmt.Fprintf(&b, "n %d  mean %.4g s  P10 %.4g  P50 %.4g  P90 %.4g\n",
			s.N, s.Mean, s.P10, s.P50, s.P90)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteReport renders the fleet run as an aligned-text aggregate
// report: one block per what-if arm with mean/percentile rows for every
// metric and estimator, then cache and throughput statistics.
func (r *Result) WriteReport(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet report: %d sessions, %d workers ==\n", len(r.Sessions), r.Workers)
	if r.Executed < len(r.Sessions) {
		fmt.Fprintf(&b, "(%d executed, %d skipped by the resume set)\n",
			r.Executed, len(r.Sessions)-r.Executed)
	}
	if err := r.Agg.WriteAggregate(&b); err != nil {
		return err
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	return r.WriteEngineStats(w)
}

// WriteEngineStats renders the run's cache and throughput footer — the
// block shared by WriteReport and the store-backed report path in
// cmd/fleet.
func (r *Result) WriteEngineStats(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "\n-- engine --\n")
	fmt.Fprintf(&b, "emission cache: %d lookups, %.1f%% hit rate (%d hits, %d misses)\n",
		r.Cache.Lookups(), r.Cache.HitRate()*100, r.Cache.Hits, r.Cache.Misses)
	if r.Powers.Lookups() > 0 {
		fmt.Fprintf(&b, "transition-power cache: %d lookups, %.1f%% shared (%d hits, %d new grids, %d collision, %d over-cap)\n",
			r.Powers.Lookups(), r.Powers.HitRate()*100, r.Powers.Hits,
			r.PowersDetail.ColdMisses, r.PowersDetail.CollisionMisses, r.PowersDetail.CapacityMisses)
	}
	fmt.Fprintf(&b, "elapsed %v, %d sessions executed (%.2f sessions/sec)\n",
		r.Elapsed.Round(1e6), r.Executed, r.SessionsPerSecond())
	_, err := io.WriteString(w, b.String())
	return err
}
