package engine

import (
	"fmt"
	"io"
	"strings"

	"veritas/internal/abduction"
)

// reportMetrics are the fleet-report rows: label, extractor, and the
// multiplier applied for display (rebuffering is shown in percent).
var reportMetrics = []struct {
	label string
	fn    abduction.MetricFn
	scale float64
	slack float64 // coverage slack in the metric's native unit
}{
	{"SSIM", abduction.MetricSSIM, 1, 0.002},
	{"rebuf %", abduction.MetricRebufRatio, 100, 0.005},
	{"bitrate Mbps", abduction.MetricAvgBitrate, 1, 0.1},
}

var reportEstimators = []ArmEstimator{EstTruth, EstBaseline, EstVeritasLow, EstVeritasHigh}

// WriteReport renders the fleet run as an aligned-text aggregate
// report: one block per what-if arm with mean/percentile rows for every
// metric and estimator, then cache and throughput statistics.
func (r *Result) WriteReport(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet report: %d sessions, %d workers ==\n", len(r.Sessions), r.Workers)

	arms := r.armNames()
	for _, arm := range arms {
		fmt.Fprintf(&b, "\n-- arm: %s --\n", arm)
		fmt.Fprintf(&b, "%-14s %-13s %9s %9s %9s %9s %9s\n",
			"metric", "estimator", "mean", "P10", "P50", "P90", "max")
		for _, m := range reportMetrics {
			for _, est := range reportEstimators {
				s := r.Agg.Summary(arm, est, m.fn)
				if s.N == 0 {
					continue
				}
				fmt.Fprintf(&b, "%-14s %-13s %9.4g %9.4g %9.4g %9.4g %9.4g\n",
					m.label, est, s.Mean*m.scale, s.P10*m.scale, s.P50*m.scale, s.P90*m.scale, s.Max*m.scale)
			}
		}
		for _, m := range reportMetrics {
			if len(r.Agg.Series(arm, EstTruth, m.fn)) == 0 {
				continue
			}
			fmt.Fprintf(&b, "coverage: truth inside Veritas range (±%g) on %.0f%% of sessions [%s]\n",
				m.slack, r.Agg.Coverage(arm, m.fn, m.slack)*100, m.label)
		}
	}

	if preds := r.Agg.Predictions(); len(preds) > 0 {
		s := Summarize(preds)
		fmt.Fprintf(&b, "\n-- interventional download-time predictions --\n")
		fmt.Fprintf(&b, "n %d  mean %.4g s  P10 %.4g  P50 %.4g  P90 %.4g\n",
			s.N, s.Mean, s.P10, s.P50, s.P90)
	}

	fmt.Fprintf(&b, "\n-- engine --\n")
	fmt.Fprintf(&b, "emission cache: %d lookups, %.1f%% hit rate (%d hits, %d misses)\n",
		r.Cache.Lookups(), r.Cache.HitRate()*100, r.Cache.Hits, r.Cache.Misses)
	fmt.Fprintf(&b, "elapsed %v, %.2f sessions/sec\n", r.Elapsed.Round(1e6), r.SessionsPerSecond())
	_, err := io.WriteString(w, b.String())
	return err
}

// armNames returns the arm names present in the run, in arm order.
func (r *Result) armNames() []string {
	for _, s := range r.Sessions {
		if len(s.Arms) > 0 {
			names := make([]string, len(s.Arms))
			for i, a := range s.Arms {
				names[i] = a.Name
			}
			return names
		}
	}
	return nil
}
