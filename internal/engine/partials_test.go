package engine

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"veritas/internal/player"
)

// synthRow builds a deterministic synthetic session row. Every (i, seed)
// pair produces the same row, so tests can regenerate a "newer record"
// for the same ID by varying seed.
func synthRow(i int, seed int64) SessionRow {
	rng := rand.New(rand.NewSource(int64(i)*1664525 + seed))
	met := func() player.Metrics {
		return player.Metrics{
			AvgSSIM:        0.8 + 0.2*rng.Float64(),
			RebufRatio:     0.05 * rng.Float64(),
			AvgBitrateMbps: 1 + 5*rng.Float64(),
		}
	}
	row := SessionRow{
		Index:    i,
		ID:       fmt.Sprintf("sess-%04d", i),
		Scenario: fmt.Sprintf("scenario-%d", i%3),
	}
	for _, name := range []string{"bba", "mpc", "mpc-greedy"} {
		oc := ArmOutcome{Name: name, Baseline: met()}
		for k := 0; k < 3+rng.Intn(3); k++ {
			oc.Samples = append(oc.Samples, met())
		}
		if i%4 != 3 { // some sessions lack the oracle
			oc.Truth = met()
			oc.HasTruth = true
		}
		row.Arms = append(row.Arms, oc)
	}
	if i%2 == 0 {
		for k := 0; k < 1+rng.Intn(4); k++ {
			row.Predictions = append(row.Predictions, rng.Float64())
		}
	}
	return row
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// The acceptance pin at the engine layer: a report built from
// incrementally folded partials is byte-identical to the full
// Aggregator recompute at every generation, for every scenario filter,
// under out-of-order arrival.
func TestPartialsReportByteIdentical(t *testing.T) {
	agg := NewAggregator(0)
	p := NewPartials()
	// Fold in a scrambled order to exercise the (Index, ID) resort.
	order := rand.New(rand.NewSource(7)).Perm(40)
	for gen, i := range order {
		row := synthRow(i, 1)
		agg.AddRow(row)
		if !p.FoldRow(row, uint64(gen)) {
			t.Fatalf("fold %d rejected", gen)
		}
		for _, scenario := range []string{"", "scenario-0", "scenario-1", "scenario-2"} {
			want := reportJSON(t, reportForScenario(agg, scenario))
			got := reportJSON(t, p.Report(scenario))
			if string(want) != string(got) {
				t.Fatalf("gen %d scenario %q:\npartials: %s\nfull:     %s", gen, scenario, got, want)
			}
		}
	}
	if p.Sessions() != 40 {
		t.Fatalf("Sessions = %d, want 40", p.Sessions())
	}
}

// reportForScenario mirrors Store.AggregateScenario over an in-RAM
// aggregator: refilter the rows, then Report.
func reportForScenario(agg *Aggregator, scenario string) *Report {
	if scenario == "" {
		return agg.Report()
	}
	sub := NewAggregator(0)
	for _, row := range agg.snapshot() {
		if row.Scenario == scenario {
			sub.AddRow(row)
		}
	}
	return sub.Report()
}

// Folding a newer record for the same ID must supersede the older one —
// and produce the exact report of an aggregator that only ever saw the
// newest records.
func TestPartialsFoldRowSupersedes(t *testing.T) {
	p := NewPartials()
	agg := NewAggregator(0)
	for i := 0; i < 12; i++ {
		p.FoldRow(synthRow(i, 1), uint64(i))
	}
	// Rewrite every third session with different outcomes.
	for i := 0; i < 12; i++ {
		row := synthRow(i, 1)
		if i%3 == 0 {
			row = synthRow(i, 99)
			p.FoldRow(row, uint64(100+i))
		}
		agg.AddRow(row)
	}
	if got, want := reportJSON(t, p.Report("")), reportJSON(t, agg.Report()); string(got) != string(want) {
		t.Fatalf("superseded report diverged:\npartials: %s\nfull:     %s", got, want)
	}
	// A stale fold (lower seq) must be rejected and change nothing.
	before := reportJSON(t, p.Report(""))
	if p.FoldRow(synthRow(0, 1), 0) {
		t.Fatal("stale fold was applied")
	}
	if after := reportJSON(t, p.Report("")); string(after) != string(before) {
		t.Fatal("rejected fold still changed the report")
	}
	// An equal-seq fold wins (replay of the same frame is idempotent).
	if !p.FoldRow(synthRow(0, 99), 100) {
		t.Fatal("equal-seq fold rejected")
	}
}

// FoldPartial is unconditional: caller order is precedence, which is
// what snapshot restore and cross-store merges rely on.
func TestPartialsFoldPartialOrderWins(t *testing.T) {
	old := ReducePartial(synthRow(3, 1), 500)
	new_ := ReducePartial(synthRow(3, 2), 1) // lower seq, folded later

	p := NewPartials()
	p.FoldPartial(old)
	p.FoldPartial(new_)

	want := NewAggregator(0)
	want.AddRow(synthRow(3, 2))
	if got, exp := reportJSON(t, p.Report("")), reportJSON(t, want.Report()); string(got) != string(exp) {
		t.Fatalf("FoldPartial order not respected:\ngot:  %s\nwant: %s", got, exp)
	}
}

func TestPartialsSeriesMatchesAggregator(t *testing.T) {
	agg := NewAggregator(0)
	p := NewPartials()
	for i := 0; i < 25; i++ {
		row := synthRow(i, 1)
		agg.AddRow(row)
		p.FoldRow(row, uint64(i))
	}
	for m, met := range reportMetrics {
		for _, est := range Estimators() {
			want := seriesOf(agg.snapshot(), "mpc", est, met.fn)
			got := p.Series("", "mpc", est, m)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("series %s/%s: got %v want %v", met.key, est, got, want)
			}
		}
	}
	if s := p.Series("", "mpc", EstBaseline, 17); s != nil {
		t.Fatalf("out-of-range metric index returned %v", s)
	}
}

func TestPartialsSnapshotRoundTrip(t *testing.T) {
	p := NewPartials()
	for i := 0; i < 15; i++ {
		p.FoldRow(synthRow(i, 1), uint64(i))
	}
	snap := p.Snapshot()
	if len(snap) != 15 {
		t.Fatalf("snapshot has %d sessions, want 15", len(snap))
	}
	// Snapshot must survive a JSON round trip (the store persists it).
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back []PartialSession
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	p2 := NewPartials()
	for _, ps := range back {
		p2.FoldPartial(ps)
	}
	if got, want := reportJSON(t, p2.Report("")), reportJSON(t, p.Report("")); string(got) != string(want) {
		t.Fatalf("restored report diverged:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestPartialsLookups(t *testing.T) {
	p := NewPartials()
	for i := 0; i < 9; i++ {
		p.FoldRow(synthRow(i, 1), uint64(i))
	}
	if !p.HasScenario("scenario-1") || p.HasScenario("nope") {
		t.Fatal("HasScenario wrong")
	}
	union := p.ArmUnion("")
	if !reflect.DeepEqual(union, []string{"bba", "mpc", "mpc-greedy"}) {
		t.Fatalf("ArmUnion = %v", union)
	}
	if got := p.ArmUnion("nope"); len(got) != 0 {
		t.Fatalf("ArmUnion(nope) = %v", got)
	}
}

func TestMetricIndexAndEstimators(t *testing.T) {
	for i, m := range ReportMetrics() {
		if got, ok := MetricIndex(m.Key); !ok || got != i {
			t.Fatalf("MetricIndex(%q) = %d, %v", m.Key, got, ok)
		}
		if got, ok := MetricIndex(m.Label); !ok || got != i {
			t.Fatalf("MetricIndex(%q) = %d, %v", m.Label, got, ok)
		}
	}
	if _, ok := MetricIndex("SSIM"); !ok { // label, exact
		t.Fatal("label lookup failed")
	}
	if _, ok := MetricIndex("vmaf"); ok {
		t.Fatal("unknown metric resolved")
	}
	if est, ok := ParseEstimator("veritas-mid"); !ok || est != EstVeritasMid {
		t.Fatalf("ParseEstimator = %v, %v", est, ok)
	}
	if _, ok := ParseEstimator("psychic"); ok {
		t.Fatal("unknown estimator resolved")
	}
}
