package engine

import (
	"math/rand"
	"testing"

	"veritas/internal/tcp"
)

func cacheStates() []tcp.State {
	a := tcp.Fresh(0.16)
	b := tcp.Fresh(0.16)
	b.CWND = 42
	b.LastSendGap = 3
	c := tcp.Fresh(0.08)
	c.SSThresh = 64
	return []tcp.State{a, b, c}
}

// TestEstimatorCachePurity drives the cache through emission-table-like
// passes and adversarial random access, checking every answer against
// the uncached estimator.
func TestEstimatorCachePurity(t *testing.T) {
	states := cacheStates()
	sizes := []float64{5e5, 1e6, 2.5e6}
	grid := make([]float64, 24)
	for i := range grid {
		grid[i] = 0.5 * float64(i+1)
	}
	cache := newEstimatorCache()

	// Four in-order passes, like Viterbi + forward-backward twice.
	for pass := 0; pass < 4; pass++ {
		for si, st := range states {
			for _, g := range grid {
				got := cache.estimate(g, st, sizes[si])
				want := tcp.EstimateThroughput(g, st, sizes[si])
				if got != want {
					t.Fatalf("pass %d: cache %v, direct %v", pass, got, want)
				}
			}
		}
	}
	st := cache.stats()
	wantMisses := uint64(len(states) * len(grid))
	if st.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (one per unique input)", st.Misses, wantMisses)
	}
	if st.Hits != 3*wantMisses {
		t.Errorf("hits = %d, want %d (three repeat passes)", st.Hits, 3*wantMisses)
	}

	// Adversarial: random interleaved access must stay correct.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		si := rng.Intn(len(states))
		g := grid[rng.Intn(len(grid))]
		got := cache.estimate(g, states[si], sizes[si])
		want := tcp.EstimateThroughput(g, states[si], sizes[si])
		if got != want {
			t.Fatalf("random access %d: cache %v, direct %v", i, got, want)
		}
	}
	// Random access over already-built rows must be all hits.
	if after := cache.stats(); after.Misses != wantMisses {
		t.Errorf("random access added misses: %d -> %d", wantMisses, after.Misses)
	}
}

// TestEstimatorCacheOutOfOrderBuild covers the sorted-insert fallback:
// descending first-pass order still builds a correct row.
func TestEstimatorCacheOutOfOrderBuild(t *testing.T) {
	cache := newEstimatorCache()
	st := tcp.Fresh(0.16)
	for g := 10.0; g >= 1; g-- {
		if got, want := cache.estimate(g, st, 1e6), tcp.EstimateThroughput(g, st, 1e6); got != want {
			t.Fatalf("build: cache %v, direct %v", got, want)
		}
	}
	for g := 1.0; g <= 10; g++ {
		if got, want := cache.estimate(g, st, 1e6), tcp.EstimateThroughput(g, st, 1e6); got != want {
			t.Fatalf("read: cache %v, direct %v", got, want)
		}
	}
	s := cache.stats()
	if s.Misses != 10 || s.Hits != 10 {
		t.Errorf("stats = %+v, want 10 misses / 10 hits", s)
	}
}

func BenchmarkEstimatorCacheHit(b *testing.B) {
	cache := newEstimatorCache()
	st := tcp.Fresh(0.16)
	grid := make([]float64, 24)
	for i := range grid {
		grid[i] = 0.5 * float64(i+1)
	}
	for _, g := range grid {
		cache.estimate(g, st, 1e6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.estimate(grid[i%len(grid)], st, 1e6)
	}
}

func BenchmarkEstimatorDirect(b *testing.B) {
	st := tcp.Fresh(0.16)
	grid := make([]float64, 24)
	for i := range grid {
		grid[i] = 0.5 * float64(i+1)
	}
	for i := 0; i < b.N; i++ {
		tcp.EstimateThroughput(grid[i%len(grid)], st, 1e6)
	}
}
