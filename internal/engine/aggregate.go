package engine

import (
	"sync"

	"veritas/internal/abduction"
	"veritas/internal/player"
	"veritas/internal/stats"
)

// ArmEstimator selects which of the paper's estimators a fleet
// aggregate is computed over.
type ArmEstimator string

const (
	// EstTruth is the oracle replay over the ground-truth trace.
	EstTruth ArmEstimator = "truth"
	// EstBaseline is the replay over the Baseline throughput estimate.
	EstBaseline ArmEstimator = "baseline"
	// EstVeritasLow / EstVeritasHigh are the paper's reported range
	// (second-lowest and second-highest posterior sample outcome).
	EstVeritasLow  ArmEstimator = "veritas-low"
	EstVeritasHigh ArmEstimator = "veritas-high"
	// EstVeritasMid is the midpoint of the Veritas range, the point
	// estimate used for error comparisons.
	EstVeritasMid ArmEstimator = "veritas-mid"
)

// Summary is a fleet-level description of one metric series.
type Summary struct {
	N                                 int
	Mean                              float64
	Min, P10, P25, P50, P75, P90, Max float64
}

// Summarize computes a Summary over vals; the zero Summary for empty
// input.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(vals),
		Mean: stats.Mean(vals),
		Min:  stats.Min(vals),
		P10:  stats.Percentile(vals, 10),
		P25:  stats.Percentile(vals, 25),
		P50:  stats.Percentile(vals, 50),
		P75:  stats.Percentile(vals, 75),
		P90:  stats.Percentile(vals, 90),
		Max:  stats.Max(vals),
	}
}

// Aggregator collects streamed per-session results and serves fleet
// aggregates. Add is safe to call from worker goroutines; every
// read-side method computes over sessions in corpus order, so the
// aggregates are byte-identical no matter how many workers ran or in
// what order results arrived.
type Aggregator struct {
	mu       sync.Mutex
	sessions []*SessionResult // indexed by SessionResult.Index
}

// NewAggregator returns an aggregator for a corpus of n sessions.
func NewAggregator(n int) *Aggregator {
	return &Aggregator{sessions: make([]*SessionResult, n)}
}

// Add records one completed session.
func (a *Aggregator) Add(r SessionResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r.Index >= 0 && r.Index < len(a.sessions) {
		cp := r
		a.sessions[r.Index] = &cp
	}
}

// Completed returns the number of sessions recorded so far.
func (a *Aggregator) Completed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int
	for _, s := range a.sessions {
		if s != nil {
			n++
		}
	}
	return n
}

// snapshot returns the recorded sessions in corpus order.
func (a *Aggregator) snapshot() []*SessionResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*SessionResult, 0, len(a.sessions))
	for _, s := range a.sessions {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func armValue(oc ArmOutcome, est ArmEstimator, f abduction.MetricFn) (float64, bool) {
	switch est {
	case EstTruth:
		if !oc.HasTruth {
			return 0, false
		}
		return f(oc.Truth), true
	case EstBaseline:
		return f(oc.Baseline), true
	case EstVeritasLow:
		lo, _ := abduction.VeritasRange(oc.Samples, f)
		return lo, true
	case EstVeritasHigh:
		_, hi := abduction.VeritasRange(oc.Samples, f)
		return hi, true
	case EstVeritasMid:
		lo, hi := abduction.VeritasRange(oc.Samples, f)
		return (lo + hi) / 2, true
	}
	return 0, false
}

// Series returns the per-session values of metric f under the given
// estimator for one arm, in corpus order. Sessions missing the arm (or
// the ground truth, for EstTruth) are skipped.
func (a *Aggregator) Series(arm string, est ArmEstimator, f abduction.MetricFn) []float64 {
	var out []float64
	for _, s := range a.snapshot() {
		for _, oc := range s.Arms {
			if oc.Name != arm {
				continue
			}
			if v, ok := armValue(oc, est, f); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// SettingASeries returns metric f of the deployed (Setting A) sessions,
// in corpus order, skipping sessions built from pre-recorded logs.
func (a *Aggregator) SettingASeries(f abduction.MetricFn) []float64 {
	var out []float64
	for _, s := range a.snapshot() {
		if s.Log != nil && s.SettingA != (player.Metrics{}) {
			out = append(out, f(s.SettingA))
		}
	}
	return out
}

// Predictions returns every interventional prediction in corpus order.
func (a *Aggregator) Predictions() []float64 {
	var out []float64
	for _, s := range a.snapshot() {
		out = append(out, s.Predictions...)
	}
	return out
}

// Summary summarizes metric f under the estimator for one arm.
func (a *Aggregator) Summary(arm string, est ArmEstimator, f abduction.MetricFn) Summary {
	return Summarize(a.Series(arm, est, f))
}

// CDF returns the empirical CDF of metric f under the estimator.
func (a *Aggregator) CDF(arm string, est ArmEstimator, f abduction.MetricFn) []stats.CDFPoint {
	return stats.CDF(a.Series(arm, est, f))
}

// Coverage returns the fraction of sessions whose oracle outcome lies
// inside [VeritasLow − slack, VeritasHigh + slack] for metric f.
func (a *Aggregator) Coverage(arm string, f abduction.MetricFn, slack float64) float64 {
	var n, covered int
	for _, s := range a.snapshot() {
		for _, oc := range s.Arms {
			if oc.Name != arm || !oc.HasTruth {
				continue
			}
			lo, hi := abduction.VeritasRange(oc.Samples, f)
			t := f(oc.Truth)
			n++
			if t >= lo-slack && t <= hi+slack {
				covered++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(covered) / float64(n)
}
