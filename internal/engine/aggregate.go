package engine

import (
	"sort"
	"sync"

	"veritas/internal/abduction"
	"veritas/internal/player"
	"veritas/internal/stats"
)

// ArmEstimator selects which of the paper's estimators a fleet
// aggregate is computed over.
type ArmEstimator string

const (
	// EstTruth is the oracle replay over the ground-truth trace.
	EstTruth ArmEstimator = "truth"
	// EstBaseline is the replay over the Baseline throughput estimate.
	EstBaseline ArmEstimator = "baseline"
	// EstVeritasLow / EstVeritasHigh are the paper's reported range
	// (second-lowest and second-highest posterior sample outcome).
	EstVeritasLow  ArmEstimator = "veritas-low"
	EstVeritasHigh ArmEstimator = "veritas-high"
	// EstVeritasMid is the midpoint of the Veritas range, the point
	// estimate used for error comparisons.
	EstVeritasMid ArmEstimator = "veritas-mid"
)

// Summary is a fleet-level description of one metric series.
type Summary struct {
	N                                 int
	Mean                              float64
	Min, P10, P25, P50, P75, P90, Max float64
}

// Summarize computes a Summary over vals; the zero Summary for empty
// input.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(vals),
		Mean: stats.Mean(vals),
		Min:  stats.Min(vals),
		P10:  stats.Percentile(vals, 10),
		P25:  stats.Percentile(vals, 25),
		P50:  stats.Percentile(vals, 50),
		P75:  stats.Percentile(vals, 75),
		P90:  stats.Percentile(vals, 90),
		Max:  stats.Max(vals),
	}
}

// SessionRow is the compact, serializable reduction of a SessionResult:
// everything aggregation and the result store keep per session, and
// nothing else. In particular it drops the session log and any retained
// abduction, which is what bounds the aggregator's memory on corpora
// whose logs would not fit in RAM.
type SessionRow struct {
	Index       int
	ID          string
	Scenario    string
	Simulated   bool // true when Setting A was simulated (SettingA is meaningful)
	SettingA    player.Metrics
	Arms        []ArmOutcome
	Predictions []float64
	CacheHits   uint64
	CacheMisses uint64
}

// Row reduces the result to its aggregation row.
func (r SessionResult) Row() SessionRow {
	return SessionRow{
		Index:       r.Index,
		ID:          r.ID,
		Scenario:    r.Scenario,
		Simulated:   r.Log != nil && r.SettingA != (player.Metrics{}),
		SettingA:    r.SettingA,
		Arms:        r.Arms,
		Predictions: r.Predictions,
		CacheHits:   r.Cache.Hits,
		CacheMisses: r.Cache.Misses,
	}
}

// Sink consumes completed session results as workers finish them — the
// engine's streaming persistence hook (e.g. a store writer). Put is
// called from worker goroutines in completion order and must be safe
// for concurrent use; the first Put error aborts the run.
type Sink interface {
	Put(SessionResult) error
}

// Aggregator collects streamed per-session rows and serves fleet
// aggregates. Add/AddRow are safe to call from worker goroutines; every
// read-side method computes over rows ordered by (Index, ID), so the
// aggregates are byte-identical no matter how many workers ran, in what
// order results arrived, or whether the rows came straight from the
// engine or were re-read from a persistent store.
type Aggregator struct {
	mu       sync.Mutex
	rows     []SessionRow
	unsorted bool
}

// NewAggregator returns an aggregator with room for about n sessions
// (a capacity hint, not a limit).
func NewAggregator(n int) *Aggregator {
	if n < 0 {
		n = 0
	}
	return &Aggregator{rows: make([]SessionRow, 0, n)}
}

// Add reduces one completed session result to its row and records it.
func (a *Aggregator) Add(r SessionResult) { a.AddRow(r.Row()) }

// AddRow records one session row (e.g. re-read from a store).
func (a *Aggregator) AddRow(row SessionRow) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows = append(a.rows, row)
	a.unsorted = true
}

// Completed returns the number of rows recorded so far.
func (a *Aggregator) Completed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.rows)
}

// snapshot returns the recorded rows ordered by (Index, ID). The rows
// themselves are shared with the aggregator and must not be mutated.
func (a *Aggregator) snapshot() []SessionRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.unsorted {
		sort.Slice(a.rows, func(i, j int) bool {
			if a.rows[i].Index != a.rows[j].Index {
				return a.rows[i].Index < a.rows[j].Index
			}
			return a.rows[i].ID < a.rows[j].ID
		})
		a.unsorted = false
	}
	out := make([]SessionRow, len(a.rows))
	copy(out, a.rows)
	return out
}

// ArmNames returns the arm names present in the aggregate, in arm
// order, taken from the first recorded session that ran any arms.
func (a *Aggregator) ArmNames() []string { return armNamesOf(a.snapshot()) }

func armNamesOf(rows []SessionRow) []string {
	for _, s := range rows {
		if len(s.Arms) > 0 {
			names := make([]string, len(s.Arms))
			for i, oc := range s.Arms {
				names[i] = oc.Name
			}
			return names
		}
	}
	return nil
}

func armValue(oc ArmOutcome, est ArmEstimator, f abduction.MetricFn) (float64, bool) {
	switch est {
	case EstTruth:
		if !oc.HasTruth {
			return 0, false
		}
		return f(oc.Truth), true
	case EstBaseline:
		return f(oc.Baseline), true
	case EstVeritasLow:
		lo, _ := abduction.VeritasRange(oc.Samples, f)
		return lo, true
	case EstVeritasHigh:
		_, hi := abduction.VeritasRange(oc.Samples, f)
		return hi, true
	case EstVeritasMid:
		lo, hi := abduction.VeritasRange(oc.Samples, f)
		return (lo + hi) / 2, true
	}
	return 0, false
}

// Series returns the per-session values of metric f under the given
// estimator for one arm, in corpus order. Sessions missing the arm (or
// the ground truth, for EstTruth) are skipped.
func (a *Aggregator) Series(arm string, est ArmEstimator, f abduction.MetricFn) []float64 {
	return seriesOf(a.snapshot(), arm, est, f)
}

func seriesOf(rows []SessionRow, arm string, est ArmEstimator, f abduction.MetricFn) []float64 {
	var out []float64
	for _, s := range rows {
		for _, oc := range s.Arms {
			if oc.Name != arm {
				continue
			}
			if v, ok := armValue(oc, est, f); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// SettingASeries returns metric f of the deployed (Setting A) sessions,
// in corpus order, skipping sessions built from pre-recorded logs.
func (a *Aggregator) SettingASeries(f abduction.MetricFn) []float64 {
	var out []float64
	for _, s := range a.snapshot() {
		if s.Simulated {
			out = append(out, f(s.SettingA))
		}
	}
	return out
}

// Predictions returns every interventional prediction in corpus order.
func (a *Aggregator) Predictions() []float64 { return predictionsOf(a.snapshot()) }

func predictionsOf(rows []SessionRow) []float64 {
	var out []float64
	for _, s := range rows {
		out = append(out, s.Predictions...)
	}
	return out
}

// Summary summarizes metric f under the estimator for one arm.
func (a *Aggregator) Summary(arm string, est ArmEstimator, f abduction.MetricFn) Summary {
	return Summarize(a.Series(arm, est, f))
}

// CDF returns the empirical CDF of metric f under the estimator.
func (a *Aggregator) CDF(arm string, est ArmEstimator, f abduction.MetricFn) []stats.CDFPoint {
	return stats.CDF(a.Series(arm, est, f))
}

// Coverage returns the fraction of sessions whose oracle outcome lies
// inside [VeritasLow − slack, VeritasHigh + slack] for metric f.
func (a *Aggregator) Coverage(arm string, f abduction.MetricFn, slack float64) float64 {
	return coverageOf(a.snapshot(), arm, f, slack)
}

func coverageOf(rows []SessionRow, arm string, f abduction.MetricFn, slack float64) float64 {
	var n, covered int
	for _, s := range rows {
		for _, oc := range s.Arms {
			if oc.Name != arm || !oc.HasTruth {
				continue
			}
			lo, hi := abduction.VeritasRange(oc.Samples, f)
			t := f(oc.Truth)
			n++
			if t >= lo-slack && t <= hi+slack {
				covered++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(covered) / float64(n)
}
