package engine

import (
	"fmt"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/trace"
	"veritas/internal/video"
)

// Scenarios returns the corpus scenario names BuildCorpus accepts: the
// generator regimes from internal/trace plus the square-wave process.
func Scenarios() []string {
	return append(trace.Regimes(), "square")
}

// CorpusConfig describes a scenario-diverse synthetic corpus: for each
// named scenario, SessionsPer ground-truth traces with consecutive
// seeds, all streamed by the same deployed design.
type CorpusConfig struct {
	// Scenarios is a subset of Scenarios(); empty means all of them.
	Scenarios []string
	// SessionsPer is the number of sessions per scenario (default 8).
	SessionsPer int
	// NumChunks truncates the synthetic video (0 means the full clip).
	NumChunks int
	// BufferCap is the deployed buffer size (default 5 s).
	BufferCap float64
	// NewABR is the deployed algorithm factory (default RobustMPC).
	NewABR func() abr.Algorithm
	// Seed derives every trace, jitter and abduction seed in the corpus.
	Seed int64
}

// squareBands are the square-wave variants the "square" scenario cycles
// through: lo/hi plateaus in Mbps and the half-period in seconds.
var squareBands = []struct{ lo, hi, halfPeriod float64 }{
	{2, 6, 60},
	{3, 8, 30},
	{4, 5, 90},
	{1, 7, 45},
}

// video materializes the corpus clip: the default synthetic video
// truncated to NumChunks. Synthesis is seeded and deterministic, so
// BuildCorpus and BuildMatrix called with the same config produce
// equal-content clips — Setting A and every Setting B stream the same
// chunks, though not the same *video.Video object.
func (cfg CorpusConfig) video() *video.Video {
	vcfg := video.DefaultConfig(1)
	if cfg.NumChunks > 0 {
		vcfg.NumChunks = cfg.NumChunks
	}
	return video.MustSynthesize(vcfg)
}

// BuildCorpus materializes the corpus as engine session specs. The
// result is fully deterministic in the config.
func BuildCorpus(cfg CorpusConfig) ([]SessionSpec, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = Scenarios()
	}
	per := cfg.SessionsPer
	if per <= 0 {
		per = 8
	}
	buf := cfg.BufferCap
	if buf == 0 {
		buf = 5
	}
	newABR := cfg.NewABR
	if newABR == nil {
		newABR = func() abr.Algorithm { return abr.NewMPC() }
	}
	vid := cfg.video()

	corpus := make([]SessionSpec, 0, len(scenarios)*per)
	for si, name := range scenarios {
		for i := 0; i < per; i++ {
			seed := cfg.Seed + int64(si)*10_000 + int64(i)
			var gt *trace.Trace
			var err error
			switch name {
			case "square":
				b := squareBands[i%len(squareBands)]
				gt, err = trace.SquareWave(b.lo, b.hi, b.halfPeriod, 720)
			default:
				var gcfg trace.GenConfig
				gcfg, err = trace.RegimeConfig(name, seed)
				if err == nil {
					gt, err = trace.Generate(gcfg)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("engine: corpus scenario %q: %w", name, err)
			}
			net := netem.DefaultConfig()
			net.Seed = seed
			corpus = append(corpus, SessionSpec{
				ID:        fmt.Sprintf("%s-%03d", name, i),
				Scenario:  name,
				Trace:     gt,
				Video:     vid,
				NewABR:    newABR,
				BufferCap: buf,
				Net:       &net,
			})
		}
	}
	return corpus, nil
}

// ABRs returns the algorithm names BuildMatrix accepts.
func ABRs() []string { return []string{"mpc", "bba", "bola", "festive"} }

func abrFactory(name string) (func() abr.Algorithm, error) {
	switch name {
	case "mpc":
		return func() abr.Algorithm { return abr.NewMPC() }, nil
	case "bba":
		return func() abr.Algorithm { return abr.NewBBA() }, nil
	case "bola":
		return func() abr.Algorithm { return abr.NewBOLA() }, nil
	case "festive":
		return func() abr.Algorithm { return abr.NewFestive() }, nil
	}
	return nil, fmt.Errorf("engine: unknown ABR %q (have %v)", name, ABRs())
}

// BuildMatrix returns the ABR × buffer-size what-if matrix for a
// corpus: one arm per (algorithm, buffer) pair, named "<abr>-<buf>s",
// all streaming the corpus video over the default emulated path.
func BuildMatrix(cfg CorpusConfig, abrs []string, buffers []float64) ([]Arm, error) {
	if len(abrs) == 0 || len(buffers) == 0 {
		return nil, fmt.Errorf("engine: matrix needs at least one ABR and one buffer size")
	}
	vid := cfg.video()
	var arms []Arm
	for _, name := range abrs {
		newABR, err := abrFactory(name)
		if err != nil {
			return nil, err
		}
		for _, buf := range buffers {
			if buf <= 0 {
				return nil, fmt.Errorf("engine: matrix buffer %v <= 0", buf)
			}
			arms = append(arms, Arm{
				Name: fmt.Sprintf("%s-%gs", name, buf),
				Setting: abduction.Setting{
					Video:     vid,
					NewABR:    newABR,
					BufferCap: buf,
					Net:       netem.DefaultConfig(),
				},
			})
		}
	}
	return arms, nil
}
