// Package engine is the fleet layer of the Veritas reproduction: a
// sharded, worker-pool batch causal-query engine. Where the facade
// answers one query over one session log, the engine takes a corpus of
// sessions and fans the per-session pipeline — simulate Setting A,
// Abduct, replay every what-if arm, answer interventional queries —
// out across GOMAXPROCS workers.
//
// Three properties the single-session path does not have:
//
//   - Sharding: the corpus is split into contiguous shards pulled from
//     a shared queue, so workers stay busy even when session costs are
//     skewed (long rebuffering sessions abduce more intervals).
//   - Scratch arenas: each worker owns one hmm.Scratch sized by the
//     largest session shape it has seen and recycled across its whole
//     corpus slice, so the per-session inference path is
//     allocation-flat. Retained abductions (Config.KeepAbductions)
//     would alias recycled memory, so that mode falls back to fresh
//     per-session buffers.
//   - Memoization: the hot TCP-emission computation f(c, W, S) is
//     memoized per session (abductions that fit transitions evaluate
//     the emission table once for EM and once for inference; the
//     single-pass standard path keeps the cache for chunks sharing a
//     TCP state and size). Hit/miss counts are aggregated across the
//     fleet; the cache rows themselves live in a worker-owned arena
//     reset between sessions.
//   - Aggregation: per-session results stream into a thread-safe
//     Aggregator; aggregates are computed in session order so results
//     are byte-identical for every worker count.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/hmm"
	"veritas/internal/mathx"
	"veritas/internal/netem"
	"veritas/internal/player"
	"veritas/internal/tcp"
	"veritas/internal/telemetry"
	"veritas/internal/trace"
	"veritas/internal/tracing"
	"veritas/internal/video"
)

// Config parameterizes a fleet run. The zero value is usable: all
// workers, default sampling, cache on.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of consecutive sessions per work unit;
	// 0 picks a size that gives each worker several shards.
	ShardSize int
	// Samples is the posterior sample count K used when a spec's
	// abduction config leaves it zero (default 5).
	Samples int
	// Seed derives per-session abduction seeds for specs that leave
	// Abduct.Seed zero, keeping fleet runs reproducible end to end.
	Seed int64
	// DisableCache turns off the per-session emission memoization
	// (used by tests and benchmarks to measure its effect).
	DisableCache bool
	// KeepAbductions retains each session's *abduction.Abduction in its
	// result. Off by default: posteriors are large, and fleet-scale runs
	// only need the aggregates.
	KeepAbductions bool
	// OnResult, when set, is called once per completed session, from
	// worker goroutines, in completion order. It must be safe for
	// concurrent use.
	OnResult func(SessionResult)
	// OnProgress, when set, is called once per completed session, from
	// worker goroutines, with the count of sessions completed so far and
	// the total this run will execute (the corpus minus the Skip set and
	// any out-of-shard sessions). Each call carries a distinct done
	// value and the final call's done equals total, but calls from
	// different workers may be observed out of order. It must be safe
	// for concurrent use. This is the per-shard progress hook the
	// dispatch supervisor streams out of worker processes.
	OnProgress func(done, total int)
	// Sink, when set, receives every completed session result in
	// completion order — the streaming persistence hook behind
	// `cmd/fleet -store`. Put is called from worker goroutines; the
	// first Put error aborts the run. Setting a Sink also bounds the
	// run's memory: Result.Sessions then retains only the compact
	// per-session fields (logs — and abductions, unless
	// KeepAbductions — are dropped once sunk), since the full data
	// lives in the sink.
	Sink Sink
	// Skip holds effective session IDs (SessionSpec.ID, or the
	// "session-<index>" default) to leave out of the run: they are not
	// simulated, aggregated or sunk, but keep their corpus index — and
	// therefore their derived abduction seed — so a resumed campaign
	// computes exactly what an uninterrupted one would have.
	Skip map[string]bool
	// ShardIndex/ShardCount partition the corpus for multi-process
	// dispatch: with ShardCount n > 1, only sessions whose corpus index
	// i satisfies i mod n == ShardIndex are executed. The partition is
	// by corpus index, so every session keeps the index — and therefore
	// the derived abduction seed — it has in the unsharded run: n
	// shards' results folded back together are byte-identical to one
	// process computing the whole corpus. ShardCount 0 (or 1) means no
	// sharding.
	ShardIndex int
	ShardCount int
	// DiscardResults leaves Result.Sessions empty: completed sessions
	// flow only through Sink/OnResult and the aggregator. This is what
	// bounds a streaming consumer's memory — nothing per-session is
	// retained beyond the aggregator's compact rows.
	DiscardResults bool
	// Telemetry, when set, receives per-stage latency histograms, the
	// session throughput counter and cache-traffic counters for the run
	// (metric names veritas_engine_*). Recording is a few atomic adds
	// per session and never feeds back into computation: results are
	// byte-identical with and without a registry.
	Telemetry *telemetry.Registry
	// Tracer, when set, records one tail-sampled trace per session with
	// simulate/abduct/replay/predict child spans (chunk counts and
	// cache-hit attributes attached). Like Telemetry, tracing only
	// observes — it never feeds back into computation, and results are
	// byte-identical with and without a tracer. nil means tracing off.
	Tracer *tracing.Tracer
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) samples() int {
	if c.Samples > 0 {
		return c.Samples
	}
	return 5
}

// inShard reports whether corpus index i belongs to this config's
// shard of the partition (always true when unsharded).
func (c Config) inShard(i int) bool {
	return c.ShardCount <= 1 || i%c.ShardCount == c.ShardIndex
}

// ShardSessions returns how many corpus indices in [0, total) belong
// to shard index of count — the session count a shard executes before
// any resume skips. It is computed with the same predicate Run
// partitions by, so callers reporting shard sizes can never diverge
// from what actually executes. (Unrelated to Config.ShardSize, which
// batches sessions into worker work units.)
func ShardSessions(total, index, count int) int {
	cfg := Config{ShardIndex: index, ShardCount: count}
	n := 0
	for i := 0; i < total; i++ {
		if cfg.inShard(i) {
			n++
		}
	}
	return n
}

func (c Config) shardSize(n, workers int) int {
	if c.ShardSize > 0 {
		return c.ShardSize
	}
	// Several shards per worker smooths skewed session costs without
	// queue-churn on tiny corpora.
	s := n / (workers * 4)
	if s < 1 {
		s = 1
	}
	return s
}

// SessionSpec describes one session of the corpus: either a ground-truth
// trace to simulate Setting A over, or a pre-recorded log to invert
// directly. Video, Net and BufferCap default to the facade's defaults.
type SessionSpec struct {
	// ID labels the session in results; empty means "session-<index>".
	ID string
	// Scenario labels the bandwidth regime the session came from; it
	// rides through results into the store, where the serving layer
	// groups and filters by it. Optional.
	Scenario string
	// Trace is the ground-truth bandwidth. Required unless Log is set;
	// when present alongside arms it also enables the oracle replay.
	Trace *trace.Trace
	// Log is a pre-recorded session log. When set, the Setting-A
	// simulation is skipped and the log is inverted as-is.
	Log *player.SessionLog
	// Video, NewABR, BufferCap, Net, MaxChunks configure the Setting-A
	// simulation (ignored when Log is set).
	Video     *video.Video
	NewABR    func() abr.Algorithm
	BufferCap float64
	Net       *netem.Config
	MaxChunks int
	// Abduct configures the inversion. Zero NumSamples and Seed are
	// filled from the engine config; the estimator hook is reserved for
	// the engine's memoization and must be nil.
	Abduct abduction.Config
	// SimulateOnly stops after the Setting-A simulation: no abduction,
	// arms or predictions. Used to batch-generate corpora of logs.
	SimulateOnly bool
	// Predict lists interventional download-time queries answered from
	// this session's abduction (paper §4.4).
	Predict []PredictQuery
}

// PredictQuery is one interventional query: the download time of a
// hypothetical chunk of SizeBytes requested at StartSecs with TCP state
// TCP.
type PredictQuery struct {
	StartSecs float64
	TCP       tcp.State
	SizeBytes float64
}

// Arm is one what-if setting of the query matrix, replayed against
// every session's posterior.
type Arm struct {
	Name    string
	Setting abduction.Setting
}

// ArmOutcome is one session × arm cell: the replay metrics under the
// Baseline estimate, each Veritas posterior sample, and (when the spec
// carried the ground truth) the oracle.
type ArmOutcome struct {
	Name     string
	Baseline player.Metrics
	Samples  []player.Metrics
	Truth    player.Metrics
	HasTruth bool
}

// SessionResult is everything the engine computed for one session.
type SessionResult struct {
	Index    int
	ID       string
	Scenario string
	Log      *player.SessionLog
	SettingA player.Metrics // zero when the spec supplied Log directly
	Arms     []ArmOutcome
	// Predictions[i] answers Predict[i], in seconds.
	Predictions []float64
	// Abd is the retained abduction when Config.KeepAbductions is set.
	Abd   *abduction.Abduction
	Cache CacheStats
}

// Result is a completed fleet run.
type Result struct {
	Sessions []SessionResult // in corpus order; zero entries for skipped or out-of-shard sessions
	Agg      *Aggregator
	Cache    CacheStats
	// Powers counts shared transition-power cache traffic during the
	// run: one lookup per abduced session, a hit when the session's
	// capacity grid was already in the process-wide cache. The counts
	// are a delta of process-global counters, so they are best-effort
	// when several fleet runs (or other mathx.SharedPowers users)
	// overlap in one process.
	Powers CacheStats
	// PowersDetail splits Powers.Misses by cause — cold (first sight of
	// a grid, inserted), fingerprint collision (never cacheable), and
	// registry capacity (cap reached) — the split a cache-health gauge
	// needs, since only repeated collision/capacity misses indicate a
	// thrashing fleet.
	PowersDetail mathx.SharedPowersStats
	// Executed is the number of sessions actually run (corpus size
	// minus the resume skip set and any out-of-shard sessions).
	Executed int
	Workers  int
	Elapsed  time.Duration
}

// SessionsPerSecond is the batch throughput of the run over the
// sessions actually executed.
func (r *Result) SessionsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Executed) / r.Elapsed.Seconds()
}

// Run executes the fleet: every corpus session through the full
// pipeline, every arm of the query matrix, across the worker pool.
// The first session error cancels the run; ctx cancellation aborts
// promptly with ctx.Err().
func Run(ctx context.Context, cfg Config, corpus []SessionSpec, arms []Arm) (*Result, error) {
	if len(corpus) == 0 {
		return nil, errors.New("engine: empty corpus")
	}
	if cfg.ShardCount < 0 {
		return nil, fmt.Errorf("engine: shard count %d is negative", cfg.ShardCount)
	}
	if cfg.ShardCount > 1 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, fmt.Errorf("engine: shard index %d out of range [0, %d)", cfg.ShardIndex, cfg.ShardCount)
	}
	for i, spec := range corpus {
		if spec.Trace == nil && spec.Log == nil {
			return nil, fmt.Errorf("engine: session %d has neither Trace nor Log", i)
		}
		if spec.Abduct.HMM.Estimator != nil {
			return nil, fmt.Errorf("engine: session %d sets Abduct.HMM.Estimator (reserved for the engine cache)", i)
		}
	}
	for i, a := range arms {
		if err := a.Setting.Validate(); err != nil {
			return nil, fmt.Errorf("engine: arm %d (%s): %w", i, a.Name, err)
		}
	}

	start := time.Now()
	workers := cfg.workers()
	shardSize := cfg.shardSize(len(corpus), workers)
	executed := 0
	for i, spec := range corpus {
		if cfg.inShard(i) && !cfg.Skip[specID(spec, i)] {
			executed++
		}
	}
	pow0 := mathx.SharedPowersDetail()
	em := newEngineMetrics(cfg.Telemetry)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type shard struct{ lo, hi int }
	shards := make(chan shard)
	go func() {
		defer close(shards)
		for lo := 0; lo < len(corpus); lo += shardSize {
			hi := lo + shardSize
			if hi > len(corpus) {
				hi = len(corpus)
			}
			select {
			case shards <- shard{lo, hi}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	agg := NewAggregator(len(corpus))
	var results []SessionResult
	if !cfg.DiscardResults {
		results = make([]SessionResult, len(corpus))
	}
	var (
		wg                     sync.WaitGroup
		errOnce                sync.Once
		firstErr               error
		cacheHits, cacheMisses atomic.Uint64
		completed              atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reusable state: the inference arena and the
			// emission-memo row storage, sized by the largest session
			// this worker sees and recycled across its whole slice.
			// KeepAbductions retains per-session results that would
			// alias the recycled arena, so that mode allocates fresh
			// buffers per session instead.
			var sc *hmm.Scratch
			var wcache *estimatorCache
			if !cfg.KeepAbductions {
				sc = hmm.NewScratch()
				if !cfg.DisableCache {
					wcache = newEstimatorCache()
				}
			}
			for sh := range shards {
				for i := sh.lo; i < sh.hi; i++ {
					if runCtx.Err() != nil {
						return
					}
					if !cfg.inShard(i) || cfg.Skip[specID(corpus[i], i)] {
						continue
					}
					tb := cfg.Tracer.Start("session", specID(corpus[i], i))
					res, err := runOne(cfg, corpus[i], arms, i, sc, wcache, em, tb)
					tb.Finish(err)
					if err != nil {
						fail(fmt.Errorf("engine: session %d (%s): %w", i, corpus[i].ID, err))
						return
					}
					cacheHits.Add(res.Cache.Hits)
					cacheMisses.Add(res.Cache.Misses)
					agg.Add(res)
					if cfg.Sink != nil {
						if err := cfg.Sink.Put(res); err != nil {
							fail(fmt.Errorf("engine: session %d (%s): sink: %w", i, corpus[i].ID, err))
							return
						}
					}
					if cfg.OnResult != nil {
						cfg.OnResult(res)
					}
					if cfg.OnProgress != nil {
						cfg.OnProgress(int(completed.Add(1)), executed)
					}
					if cfg.Sink != nil {
						// The sink owns the full data now; retaining
						// every log in Result.Sessions would defeat
						// the streaming path's bounded memory.
						res.Log = nil
						if !cfg.KeepAbductions {
							res.Abd = nil
						}
					}
					if !cfg.DiscardResults {
						results[i] = res
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	powDelta := mathx.SharedPowersDetail().Sub(pow0)
	em.powers(powDelta)
	return &Result{
		Sessions:     results,
		Agg:          agg,
		Cache:        CacheStats{Hits: cacheHits.Load(), Misses: cacheMisses.Load()},
		Powers:       CacheStats{Hits: powDelta.Hits, Misses: powDelta.Misses()},
		PowersDetail: powDelta,
		Executed:     executed,
		Workers:      workers,
		Elapsed:      time.Since(start),
	}, nil
}

// specID returns the effective session ID the engine uses everywhere:
// the spec's own ID, or the index-derived default.
func specID(spec SessionSpec, idx int) string {
	if spec.ID != "" {
		return spec.ID
	}
	return fmt.Sprintf("session-%d", idx)
}

// runOne executes the full pipeline for one session. It is pure given
// the spec and index — em and tb only observe durations and counts,
// never steering computation, and the worker-owned sc/wcache only
// recycle storage (a reset cache and a recycled arena behave exactly
// like fresh ones) — which is what makes fleet results independent of
// worker count, scheduling, telemetry, and tracing. The caller
// finishes tb with runOne's error.
func runOne(cfg Config, spec SessionSpec, arms []Arm, idx int, sc *hmm.Scratch, wcache *estimatorCache, em *engineMetrics, tb *tracing.T) (SessionResult, error) {
	res := SessionResult{Index: idx, ID: specID(spec, idx), Scenario: spec.Scenario}
	sessStart := em.now()
	if spec.Scenario != "" {
		tb.SetAttr("scenario", spec.Scenario)
	}

	log := spec.Log
	if log == nil {
		simStart := em.now()
		simT0 := tb.Now()
		vid := spec.Video
		if vid == nil {
			vid = video.MustSynthesize(video.DefaultConfig(1))
		}
		newABR := spec.NewABR
		if newABR == nil {
			newABR = func() abr.Algorithm { return abr.NewMPC() }
		}
		net := netem.DefaultConfig()
		if spec.Net != nil {
			net = *spec.Net
		}
		buf := spec.BufferCap
		if buf == 0 {
			buf = 5
		}
		var m player.Metrics
		var err error
		log, m, err = player.Run(player.Config{
			Video:     vid,
			ABR:       newABR(),
			Trace:     spec.Trace,
			Net:       net,
			BufferCap: buf,
			MaxChunks: spec.MaxChunks,
		})
		if err != nil {
			return res, fmt.Errorf("setting A: %w", err)
		}
		res.SettingA = m
		em.observe(em.simulate, simStart)
		tb.Span("simulate", simT0, map[string]any{"chunks": len(log.Records)})
	}
	res.Log = log
	tb.SetAttr("chunks", len(log.Records))
	if spec.SimulateOnly {
		em.sessionDone(sessStart, res.Cache)
		return res, nil
	}

	acfg := spec.Abduct
	if acfg.NumSamples == 0 {
		acfg.NumSamples = cfg.samples()
	}
	if acfg.Seed == 0 {
		// Distinct, index-stable seeds: the same corpus gives the same
		// posteriors whatever the worker count.
		acfg.Seed = cfg.Seed + 1 + int64(idx)*101
	}
	acfg.Scratch = sc // nil under KeepAbductions: results must own their buffers
	var cache *estimatorCache
	if !cfg.DisableCache {
		if cache = wcache; cache != nil {
			// Worker-owned cache: recycle the row storage, zero the
			// counters. A reset cache answers every lookup exactly as a
			// fresh one would.
			cache.reset()
		} else {
			cache = newEstimatorCache()
		}
		acfg.HMM.Estimator = cache.estimate
		// Sessions with equal capacity grids share one process-wide
		// transition-power cache (see mathx.SharedPowers).
		acfg.HMM.SharePowers = true
	}
	abductStart := em.now()
	abductT0 := tb.Now()
	abd, err := abduction.Abduct(log, acfg)
	if err != nil {
		return res, fmt.Errorf("abduct: %w", err)
	}
	em.observe(em.abduct, abductStart)
	if cache != nil {
		res.Cache = cache.stats()
		if cache != wcache {
			// A per-session cache is kept alive by the retained
			// abduction's estimator closure; nothing after inference
			// evaluates emissions, so free the rows rather than pinning
			// them. (The worker-owned cache is recycled instead.)
			cache.release()
		}
	}
	tb.Span("abduct", abductT0, map[string]any{
		"cacheHits":   res.Cache.Hits,
		"cacheMisses": res.Cache.Misses,
	})
	if cfg.KeepAbductions {
		res.Abd = abd
	}

	for _, arm := range arms {
		armStart := em.now()
		armT0 := tb.Now()
		out, err := abd.Counterfactual(arm.Setting)
		if err != nil {
			return res, fmt.Errorf("arm %s: %w", arm.Name, err)
		}
		oc := ArmOutcome{Name: arm.Name, Baseline: out.Baseline, Samples: out.Samples}
		if spec.Trace != nil {
			truth, err := abduction.Replay(spec.Trace, arm.Setting)
			if err != nil {
				return res, fmt.Errorf("arm %s oracle: %w", arm.Name, err)
			}
			oc.Truth = truth
			oc.HasTruth = true
		}
		res.Arms = append(res.Arms, oc)
		em.observe(em.replay, armStart)
		tb.Span("replay", armT0, map[string]any{"arm": arm.Name})
	}

	if len(spec.Predict) > 0 {
		predictStart := em.now()
		predictT0 := tb.Now()
		for _, q := range spec.Predict {
			res.Predictions = append(res.Predictions, abd.PredictDownloadTime(q.StartSecs, q.TCP, q.SizeBytes))
		}
		em.observe(em.predict, predictStart)
		tb.Span("predict", predictT0, map[string]any{"queries": len(spec.Predict)})
	}
	em.sessionDone(sessStart, res.Cache)
	return res, nil
}
