package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"veritas/internal/abduction"
	"veritas/internal/abr"
	"veritas/internal/netem"
	"veritas/internal/tcp"
	"veritas/internal/video"
)

// testCorpus builds a small mixed-scenario corpus that keeps unit-test
// runtime low while exercising every regime.
func testCorpus(t testing.TB, sessions int) []SessionSpec {
	t.Helper()
	corpus, err := BuildCorpus(CorpusConfig{
		SessionsPer: sessions,
		NumChunks:   30,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func testArms(chunks int) []Arm {
	vcfg := video.DefaultConfig(1)
	vcfg.NumChunks = chunks
	vid := video.MustSynthesize(vcfg)
	return []Arm{
		{
			Name: "bba-5s",
			Setting: abduction.Setting{
				Video:     vid,
				NewABR:    func() abr.Algorithm { return abr.NewBBA() },
				BufferCap: 5,
				Net:       netem.DefaultConfig(),
			},
		},
		{
			Name: "mpc-30s",
			Setting: abduction.Setting{
				Video:     vid,
				NewABR:    func() abr.Algorithm { return abr.NewMPC() },
				BufferCap: 30,
				Net:       netem.DefaultConfig(),
			},
		},
	}
}

// fingerprint serializes everything aggregate-visible about a run,
// excluding wall-clock fields, so runs can be compared byte-for-byte.
func fingerprint(res *Result) string {
	var b strings.Builder
	metrics := []struct {
		label string
		fn    abduction.MetricFn
	}{
		{"ssim", abduction.MetricSSIM},
		{"rebuf", abduction.MetricRebufRatio},
		{"bitrate", abduction.MetricAvgBitrate},
	}
	for _, arm := range res.Agg.ArmNames() {
		for _, m := range metrics {
			for _, est := range []ArmEstimator{EstTruth, EstBaseline, EstVeritasLow, EstVeritasHigh, EstVeritasMid} {
				fmt.Fprintf(&b, "%s/%s/%s %v\n", arm, m.label, est, res.Agg.Series(arm, est, m.fn))
			}
			fmt.Fprintf(&b, "%s/%s coverage %v\n", arm, m.label, res.Agg.Coverage(arm, m.fn, 0.01))
		}
	}
	fmt.Fprintf(&b, "settingA %v\n", res.Agg.SettingASeries(abduction.MetricSSIM))
	fmt.Fprintf(&b, "predictions %v\n", res.Agg.Predictions())
	for _, s := range res.Sessions {
		fmt.Fprintf(&b, "%d %s %+v\n", s.Index, s.ID, s.SettingA)
	}
	return b.String()
}

// TestDeterministicAcrossWorkerCounts is the engine's core contract:
// the same corpus and seed produce byte-identical aggregates whether
// the fleet runs on 1, 2 or 7 workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	corpus := testCorpus(t, 2) // 2 per scenario × 4 scenarios = 8 sessions
	arms := testArms(30)
	var want string
	for _, workers := range []int{1, 2, 7} {
		res, err := Run(context.Background(), Config{Workers: workers, Samples: 3, Seed: 1}, corpus, arms)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Errorf("res.Workers = %d, want %d", res.Workers, workers)
		}
		got := fingerprint(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d produced different aggregates", workers)
		}
	}
}

// TestCacheDoesNotChangeResults pins that memoization is purely a
// performance optimization.
func TestCacheDoesNotChangeResults(t *testing.T) {
	corpus := testCorpus(t, 1)
	arms := testArms(30)
	with, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1, DisableCache: true}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(with) != fingerprint(without) {
		t.Error("cache changed inference results")
	}
	if without.Cache.Lookups() != 0 {
		t.Errorf("disabled cache recorded %d lookups", without.Cache.Lookups())
	}
}

// TestArenaDoesNotChangeResults pins that the per-worker scratch arena
// is purely an allocation optimization: a run that recycles arenas
// across sessions (the default) and a run that allocates fresh buffers
// per session (KeepAbductions) produce byte-identical aggregates. One
// worker forces every session of the corpus through the same arena —
// the worst case for cross-session bleed.
func TestArenaDoesNotChangeResults(t *testing.T) {
	corpus := testCorpus(t, 2)
	arms := testArms(30)
	arena, err := Run(context.Background(), Config{Workers: 1, Samples: 3, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(context.Background(), Config{Workers: 1, Samples: 3, Seed: 1, KeepAbductions: true}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(arena) != fingerprint(fresh) {
		t.Error("arena reuse changed inference results")
	}
	// Retained abductions must own their buffers: sessions on the same
	// worker must not alias one shared arena.
	for i := 1; i < len(fresh.Sessions); i++ {
		a, b := fresh.Sessions[i-1].Abd, fresh.Sessions[i].Abd
		if a == nil || b == nil {
			t.Fatal("KeepAbductions did not retain abductions")
		}
		if len(a.ViterbiPath) > 0 && len(b.ViterbiPath) > 0 && &a.ViterbiPath[0] == &b.ViterbiPath[0] {
			t.Fatal("retained abductions alias the same path buffer")
		}
	}
}

// TestCacheAccounting checks the hit/miss bookkeeping. Since the
// single-pass Infer landed, standard abduction evaluates the emission
// table exactly once, so misses are bounded by distinct-chunk-rows ×
// grid-states and hits only come from chunks sharing a TCP state and
// size; the invariants here are about accounting, not a hit-rate floor.
func TestCacheAccounting(t *testing.T) {
	corpus := testCorpus(t, 1)
	res, err := Run(context.Background(), Config{Workers: 2, Samples: 3, Seed: 1}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Lookups() == 0 {
		t.Fatal("cache saw no traffic")
	}
	if res.Cache.Hits+res.Cache.Misses != res.Cache.Lookups() {
		t.Error("hits + misses != lookups")
	}
	var perSession uint64
	for _, s := range res.Sessions {
		perSession += s.Cache.Hits + s.Cache.Misses
	}
	if perSession != res.Cache.Lookups() {
		t.Error("per-session cache stats do not sum to the fleet total")
	}
}

// TestCacheHitsWithFitTransitions pins where the emission memo still
// earns its keep after the single-pass refactor: a transition-fitting
// abduction evaluates the emission table once for the EM interval chain
// and once for inference, so at least the inference pass must hit.
func TestCacheHitsWithFitTransitions(t *testing.T) {
	corpus := testCorpus(t, 1)
	for i := range corpus {
		corpus[i].Abduct.FitTransitions = 2
	}
	res, err := Run(context.Background(), Config{Workers: 1, Samples: 2, Seed: 1}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.Cache.HitRate(); hr < 0.4 {
		t.Errorf("hit rate %.3f with FitTransitions, want >= 0.4 (EM pass + inference pass share rows)", hr)
	}
}

// TestCancellation covers both pre-cancelled contexts and mid-run
// cancellation via the streaming callback.
func TestCancellation(t *testing.T) {
	corpus := testCorpus(t, 2)
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(pre, Config{Workers: 2}, corpus, nil); err == nil {
		t.Error("pre-cancelled context should error")
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	var n atomic.Int64
	cfg := Config{
		Workers: 2,
		OnResult: func(SessionResult) {
			if n.Add(1) == 1 {
				cancelMid()
			}
		},
	}
	if _, err := Run(ctx, cfg, corpus, nil); err != context.Canceled {
		t.Errorf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= int64(len(corpus)) {
		t.Errorf("cancellation did not stop the fleet: %d/%d sessions ran", got, len(corpus))
	}
}

func TestSimulateOnlyAndPrerecordedLogs(t *testing.T) {
	corpus := testCorpus(t, 1)[:2]
	for i := range corpus {
		corpus[i].SimulateOnly = true
	}
	res, err := Run(context.Background(), Config{Workers: 2}, corpus, testArms(30))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sessions {
		if s.Log == nil {
			t.Fatal("simulate-only session missing log")
		}
		if len(s.Arms) != 0 || s.Abd != nil {
			t.Error("simulate-only session ran queries")
		}
	}
	if res.Cache.Lookups() != 0 {
		t.Error("simulate-only fleet touched the emission cache")
	}

	// Feed the recorded logs back as pre-recorded specs.
	specs := make([]SessionSpec, len(res.Sessions))
	for i, s := range res.Sessions {
		specs[i] = SessionSpec{ID: s.ID, Log: s.Log}
	}
	res2, err := Run(context.Background(), Config{Workers: 2, Samples: 2, KeepAbductions: true}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res2.Sessions {
		if s.Abd == nil {
			t.Error("KeepAbductions did not retain the abduction")
		}
	}
	if got := res2.Agg.SettingASeries(abduction.MetricSSIM); len(got) != 0 {
		t.Errorf("pre-recorded logs should have no Setting-A metrics, got %d", len(got))
	}
}

func TestPredictQueries(t *testing.T) {
	corpus := testCorpus(t, 1)[:1]
	// First simulate to learn the log, then ask for next-chunk times.
	sim := corpus[0]
	sim.SimulateOnly = true
	res, err := Run(context.Background(), Config{}, []SessionSpec{sim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	log := res.Sessions[0].Log
	last := log.Records[len(log.Records)-1]
	st := last.TCP
	st.LastSendGap = 2
	spec := corpus[0]
	spec.Predict = []PredictQuery{
		{StartSecs: last.End + 2, TCP: st, SizeBytes: 1e6},
		{StartSecs: last.End + 2, TCP: st, SizeBytes: 4e6},
	}
	res2, err := Run(context.Background(), Config{Samples: 2}, []SessionSpec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	preds := res2.Sessions[0].Predictions
	if len(preds) != 2 {
		t.Fatalf("got %d predictions, want 2", len(preds))
	}
	if preds[0] <= 0 || preds[1] <= preds[0] {
		t.Errorf("predictions %v: want positive and increasing with size", preds)
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil, nil); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := Run(context.Background(), Config{}, []SessionSpec{{}}, nil); err == nil {
		t.Error("spec without trace or log should error")
	}
	bad := testCorpus(t, 1)[:1]
	bad[0].Abduct.HMM.Estimator = func(float64, tcp.State, float64) float64 { return 0 }
	if _, err := Run(context.Background(), Config{}, bad, nil); err == nil {
		t.Error("reserved estimator hook should error")
	}
	if _, err := Run(context.Background(), Config{}, testCorpus(t, 1)[:1], []Arm{{Name: "broken"}}); err == nil {
		t.Error("invalid arm setting should error")
	}
}

func TestBuildCorpus(t *testing.T) {
	corpus, err := BuildCorpus(CorpusConfig{SessionsPer: 3, NumChunks: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 3*len(Scenarios()) {
		t.Fatalf("corpus has %d sessions, want %d", len(corpus), 3*len(Scenarios()))
	}
	seen := map[string]bool{}
	for _, s := range corpus {
		if s.Trace == nil || s.Video == nil || s.Net == nil {
			t.Fatalf("incomplete spec %q", s.ID)
		}
		seen[strings.SplitN(s.ID, "-", 2)[0]] = true
	}
	for _, sc := range Scenarios() {
		if !seen[sc] {
			t.Errorf("scenario %s missing from corpus", sc)
		}
	}
	if _, err := BuildCorpus(CorpusConfig{Scenarios: []string{"dialup"}}); err == nil {
		t.Error("unknown scenario should error")
	}
}

func TestReportRenders(t *testing.T) {
	corpus := testCorpus(t, 1)
	res, err := Run(context.Background(), Config{Samples: 2, Seed: 1}, corpus, testArms(30)[:1])
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fleet report", "arm: bba-5s", "SSIM", "hit rate", "sessions/sec", "coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestSharedPowerAccounting checks the fleet-level transition-power
// cache stats: one lookup per abduced session, and sessions with equal
// capacity grids must share (hit) rather than recompute.
func TestSharedPowerAccounting(t *testing.T) {
	// Identical sessions per scenario → within a scenario the observed
	// max throughput (and so the grid) repeats across seeds often
	// enough that at least one hit must occur.
	corpus := testCorpus(t, 2)
	res, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Powers.Lookups(); got != uint64(len(corpus)) {
		t.Errorf("power-cache lookups = %d, want one per session (%d)", got, len(corpus))
	}
	if res.Powers.Hits == 0 {
		t.Error("no shared power-cache hits across a scenario-repeating corpus")
	}

	// DisableCache also turns off grid sharing.
	res2, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1, DisableCache: true}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Powers.Lookups() != 0 {
		t.Errorf("DisableCache run recorded %d power-cache lookups", res2.Powers.Lookups())
	}
}

// TestSkipLeavesIndicesStable pins the resume contract inside the
// engine: a skipped prefix must not shift the indices — and therefore
// the derived seeds — of the sessions that do run.
func TestSkipLeavesIndicesStable(t *testing.T) {
	corpus := testCorpus(t, 1) // 4 sessions
	full, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	skip := map[string]bool{corpus[0].ID: true, corpus[2].ID: true}
	part, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1, Skip: skip}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if part.Executed != len(corpus)-2 {
		t.Errorf("Executed = %d, want %d", part.Executed, len(corpus)-2)
	}
	if got := part.Agg.Completed(); got != len(corpus)-2 {
		t.Errorf("aggregator recorded %d sessions, want %d", got, len(corpus)-2)
	}
	for i, s := range part.Sessions {
		if skip[corpus[i].ID] {
			if s.ID != "" {
				t.Errorf("skipped session %d has a result", i)
			}
			continue
		}
		if s.Index != full.Sessions[i].Index || s.ID != full.Sessions[i].ID {
			t.Fatalf("session %d shifted: %s/%d vs %s/%d", i, s.ID, s.Index, full.Sessions[i].ID, full.Sessions[i].Index)
		}
		if s.SettingA != full.Sessions[i].SettingA {
			t.Errorf("session %s: SettingA differs between full and skipped runs", s.ID)
		}
	}
}

// TestOnProgressCounts pins the progress callback the dispatch
// supervisor streams out of shard workers: one call per completed
// session, distinct done values covering 1..executed, and a total that
// accounts for both the shard partition and the skip set.
func TestOnProgressCounts(t *testing.T) {
	corpus := testCorpus(t, 2) // 8 sessions
	var (
		mu     sync.Mutex
		seen   = map[int]bool{}
		totals = map[int]bool{}
	)
	skip := map[string]bool{corpus[1].ID: true}
	res, err := Run(context.Background(), Config{
		Workers:    3,
		Samples:    2,
		Seed:       1,
		ShardIndex: 1,
		ShardCount: 2,
		Skip:       skip,
		OnProgress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if seen[done] {
				t.Errorf("done value %d reported twice", done)
			}
			seen[done] = true
			totals[total] = true
		},
	}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1/2 of 8 sessions is indices {1,3,5,7}; index 1 is skipped.
	if res.Executed != 3 {
		t.Fatalf("Executed = %d, want 3", res.Executed)
	}
	if len(seen) != res.Executed {
		t.Errorf("progress called %d times, want %d", len(seen), res.Executed)
	}
	for d := 1; d <= res.Executed; d++ {
		if !seen[d] {
			t.Errorf("progress never reported done=%d", d)
		}
	}
	if len(totals) != 1 || !totals[res.Executed] {
		t.Errorf("progress totals = %v, want exactly {%d}", totals, res.Executed)
	}
}

// dropSink discards results; it only exists to flip the engine into
// streaming mode.
type dropSink struct{}

func (dropSink) Put(SessionResult) error { return nil }

// TestSinkBoundsRetention pins the streaming path's memory contract:
// with a sink, Result.Sessions must not pin session logs (the sink owns
// the full data).
func TestSinkBoundsRetention(t *testing.T) {
	corpus := testCorpus(t, 1)[:2]
	res, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1, Sink: dropSink{}}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sessions {
		if s.Log != nil || s.Abd != nil {
			t.Fatalf("session %s retained Log/Abd despite a sink", s.ID)
		}
		if s.ID == "" {
			t.Fatal("compact retention lost the session identity")
		}
	}
	if got := res.Agg.SettingASeries(abduction.MetricSSIM); len(got) != 2 {
		t.Errorf("aggregator lost Setting-A rows under a sink: %d, want 2", len(got))
	}
}

func TestStreamDeliversEveryRow(t *testing.T) {
	corpus := testCorpus(t, 1)
	arms := testArms(30)
	cfg := Config{Workers: 2, Samples: 2, Seed: 1}

	want, err := Run(context.Background(), cfg, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}

	rows, wait := Stream(context.Background(), cfg, corpus, arms)
	seen := make(map[string]SessionRow)
	for row := range rows {
		if _, dup := seen[row.ID]; dup {
			t.Errorf("row %s delivered twice", row.ID)
		}
		seen[row.ID] = row
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(corpus) {
		t.Fatalf("streamed %d rows, want %d", len(seen), len(corpus))
	}
	if len(res.Sessions) != 0 {
		t.Errorf("Stream retained %d session results, want 0", len(res.Sessions))
	}
	if res.Cache.Lookups() == 0 {
		t.Error("cache stats lost on the streaming path")
	}
	// The streamed rows and aggregator match the plain Run.
	if got, want := res.Agg.Completed(), want.Agg.Completed(); got != want {
		t.Errorf("aggregator saw %d rows, want %d", got, want)
	}
	for _, s := range want.Sessions {
		row, ok := seen[s.ID]
		if !ok {
			t.Errorf("session %s never streamed", s.ID)
			continue
		}
		if row.Index != s.Index || len(row.Arms) != len(s.Arms) {
			t.Errorf("row %s diverges from Run result", s.ID)
		}
	}
}

func TestStreamAbandonedConsumerCancels(t *testing.T) {
	corpus := testCorpus(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	rows, wait := Stream(ctx, Config{Workers: 2, Samples: 1, Seed: 1}, corpus, testArms(30))
	// Read one row, then walk away: cancellation must unblock the
	// workers parked on the unbuffered channel.
	<-rows
	cancel()
	if _, err := wait(); err == nil {
		t.Fatal("abandoned stream should surface the cancellation")
	}
}

func TestDiscardResults(t *testing.T) {
	corpus := testCorpus(t, 1)
	res, err := Run(context.Background(), Config{Workers: 2, Samples: 1, Seed: 1, DiscardResults: true}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 0 {
		t.Fatalf("DiscardResults retained %d sessions", len(res.Sessions))
	}
	if res.Agg.Completed() != len(corpus) {
		t.Errorf("aggregator saw %d rows, want %d", res.Agg.Completed(), len(corpus))
	}
	if res.Cache.Lookups() == 0 {
		t.Error("cache stats lost with DiscardResults")
	}
}

// TestShardPartitionEquivalence is the multi-process dispatch contract:
// n shard runs together execute every corpus session exactly once, and
// each in-shard session's row is byte-identical to the unsharded run's
// — the partition is by corpus index, so seeds never move.
func TestShardPartitionEquivalence(t *testing.T) {
	corpus := testCorpus(t, 2) // 8 sessions
	arms := testArms(30)[:1]
	full, err := Run(context.Background(), Config{Workers: 2, Samples: 2, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	seen := make(map[string]int)
	total := 0
	for shard := 0; shard < n; shard++ {
		res, err := Run(context.Background(),
			Config{Workers: 2, Samples: 2, Seed: 1, ShardIndex: shard, ShardCount: n}, corpus, arms)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		total += res.Executed
		for idx, s := range res.Sessions {
			if idx%n != shard {
				if s.ID != "" {
					t.Errorf("shard %d executed out-of-shard session %d (%s)", shard, idx, s.ID)
				}
				continue
			}
			if s.ID == "" {
				t.Errorf("shard %d skipped in-shard session %d", shard, idx)
				continue
			}
			seen[s.ID]++
			want, err := json.Marshal(full.Sessions[idx].Row())
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(s.Row())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("shard %d session %d row differs from the unsharded run\nwant: %s\ngot:  %s",
					shard, idx, want, got)
			}
		}
	}
	if total != len(corpus) {
		t.Errorf("shards executed %d sessions in total, want %d", total, len(corpus))
	}
	if len(seen) != len(corpus) {
		t.Errorf("shards covered %d distinct sessions, want %d", len(seen), len(corpus))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("session %s executed by %d shards", id, c)
		}
	}
}

func TestShardValidation(t *testing.T) {
	corpus := testCorpus(t, 1)
	for _, cfg := range []Config{
		{ShardCount: -1},
		{ShardCount: 3, ShardIndex: 3},
		{ShardCount: 3, ShardIndex: -1},
	} {
		if _, err := Run(context.Background(), cfg, corpus, nil); err == nil {
			t.Errorf("Config{ShardIndex: %d, ShardCount: %d} accepted", cfg.ShardIndex, cfg.ShardCount)
		}
	}
	// ShardCount 1 is the whole corpus.
	res, err := Run(context.Background(), Config{Workers: 2, Samples: 1, Seed: 1, ShardCount: 1}, corpus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != len(corpus) {
		t.Errorf("ShardCount=1 executed %d sessions, want %d", res.Executed, len(corpus))
	}
}
