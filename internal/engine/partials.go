package engine

import (
	"sort"
	"strings"
	"sync"

	"veritas/internal/abduction"
)

// Incremental per-arm aggregation. The fleet report's reducer is
// associative: every cell of Aggregator.Report is a fold over
// per-session values that are pure functions of one SessionRow
// (armValue, coverageOf's range test, the prediction list). Partials
// exploits that by extracting those values once, when a row is folded
// in, and keeping them as a per-session digest — so a growing corpus
// pays O(arms × metrics) extraction per appended row instead of a full
// O(rows) rescan per report.
//
// Byte-identity discipline. Reports built from partials must be
// byte-identical to Aggregator.Report over the same rows (the repo's
// central invariant, pinned by tests at every layer). Two properties
// make that hold:
//
//   - Extraction is pure per row: armValue and VeritasRange computed at
//     fold time equal the same calls at report time.
//   - Series order is reproduced exactly: stats.Mean sums in input
//     order, so Report materializes every series in (Index, ID) session
//     order with per-session arm multiplicity preserved — the same
//     order seriesOf produces.
//
// EstVeritasMid is not stored: armValue derives it as (low+high)/2, and
// Partials reproduces that exact float expression from the stored
// low/high cells.

// PartialSession is one session's digest: everything the report needs,
// nothing else (no metrics structs, no samples). It is serializable —
// the store persists digests as a snapshot so reopening a corpus does
// not re-extract every row. Slices are shared, not copied; treat a
// PartialSession obtained from Snapshot as read-only.
type PartialSession struct {
	// Seq orders folds of the same session ID: FoldRow ignores a row
	// whose Seq is below the recorded one, so replaying a store's
	// frames in any interleaving converges on the newest record.
	Seq         uint64
	Index       int
	ID          string
	Scenario    string
	Arms        []PartialArm
	Predictions []float64
}

// PartialArm is one arm's extracted cells: per report metric, the value
// under each base estimator. Truth is present only when the outcome
// carried the oracle.
type PartialArm struct {
	Name     string
	HasTruth bool
	Truth    []float64 `json:",omitempty"` // per reportMetrics index
	Baseline []float64
	Low      []float64
	High     []float64
}

// value reproduces armValue from the stored cells. m indexes
// reportMetrics.
func (a *PartialArm) value(est ArmEstimator, m int) (float64, bool) {
	switch est {
	case EstTruth:
		if !a.HasTruth {
			return 0, false
		}
		return a.Truth[m], true
	case EstBaseline:
		return a.Baseline[m], true
	case EstVeritasLow:
		return a.Low[m], true
	case EstVeritasHigh:
		return a.High[m], true
	case EstVeritasMid:
		return (a.Low[m] + a.High[m]) / 2, true
	}
	return 0, false
}

// ReducePartial extracts one row's digest. It is the only place rows
// are reduced, so fold-time and rebuild-time digests cannot diverge.
func ReducePartial(row SessionRow, seq uint64) PartialSession {
	ps := PartialSession{
		Seq:      seq,
		Index:    row.Index,
		ID:       row.ID,
		Scenario: row.Scenario,
	}
	if len(row.Predictions) > 0 {
		ps.Predictions = append([]float64(nil), row.Predictions...)
	}
	if len(row.Arms) > 0 {
		ps.Arms = make([]PartialArm, len(row.Arms))
	}
	for i, oc := range row.Arms {
		pa := PartialArm{
			Name:     oc.Name,
			HasTruth: oc.HasTruth,
			Baseline: make([]float64, len(reportMetrics)),
			Low:      make([]float64, len(reportMetrics)),
			High:     make([]float64, len(reportMetrics)),
		}
		if oc.HasTruth {
			pa.Truth = make([]float64, len(reportMetrics))
		}
		for m, met := range reportMetrics {
			pa.Baseline[m] = met.fn(oc.Baseline)
			if oc.HasTruth {
				pa.Truth[m] = met.fn(oc.Truth)
			}
			pa.Low[m], pa.High[m] = abduction.VeritasRange(oc.Samples, met.fn)
		}
		ps.Arms[i] = pa
	}
	return ps
}

// Partials holds the incremental aggregate state of a corpus: one
// digest per session ID, newest fold wins. All methods are safe for
// concurrent use.
type Partials struct {
	mu       sync.Mutex
	sessions map[string]*PartialSession
	ordered  []*PartialSession // every session, sorted by (Index, ID) when sorted
	sorted   bool
	folds    uint64
}

// NewPartials returns an empty partial-aggregate state.
func NewPartials() *Partials {
	return &Partials{sessions: make(map[string]*PartialSession), sorted: true}
}

// FoldRow reduces one row and folds it in, replacing any digest already
// held for the same ID unless that digest carries a higher Seq (a
// concurrent fold of a newer record won the race). Reports whether the
// fold was applied.
func (p *Partials) FoldRow(row SessionRow, seq uint64) bool {
	return p.fold(ReducePartial(row, seq), false)
}

// FoldPartial folds an already-reduced digest, unconditionally: the
// caller's fold order is the precedence (last write wins), which is how
// snapshot restore and cross-store merges impose a deterministic order
// on digests whose Seq counters come from different stores.
func (p *Partials) FoldPartial(ps PartialSession) { p.fold(ps, true) }

func (p *Partials) fold(ps PartialSession, force bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.sessions[ps.ID]; ok {
		if !force && ps.Seq < cur.Seq {
			return false
		}
		if cur.Index != ps.Index {
			p.sorted = false
		}
		*cur = ps
		p.folds++
		return true
	}
	c := ps
	p.sessions[ps.ID] = &c
	p.ordered = append(p.ordered, &c)
	p.sorted = false
	p.folds++
	return true
}

// Sessions returns the number of distinct sessions folded in.
func (p *Partials) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sessions)
}

// Folds returns the total number of applied folds — a change counter
// for caches layered above.
func (p *Partials) Folds() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.folds
}

// view returns the digests in (Index, ID) order — the Aggregator's
// snapshot order — optionally filtered to one scenario. The returned
// slice is the caller's; the pointed-to digests are shared and must not
// be mutated.
func (p *Partials) view(scenario string) []*PartialSession {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.sorted {
		sort.Slice(p.ordered, func(i, j int) bool {
			if p.ordered[i].Index != p.ordered[j].Index {
				return p.ordered[i].Index < p.ordered[j].Index
			}
			return p.ordered[i].ID < p.ordered[j].ID
		})
		p.sorted = true
	}
	out := make([]*PartialSession, 0, len(p.ordered))
	for _, s := range p.ordered {
		if scenario == "" || s.Scenario == scenario {
			out = append(out, s)
		}
	}
	return out
}

// Snapshot returns every digest in (Index, ID) order — the store's
// persistence hook. Digest slices are shared; treat them as read-only.
func (p *Partials) Snapshot() []PartialSession {
	view := p.view("")
	out := make([]PartialSession, len(view))
	for i, s := range view {
		out[i] = *s
	}
	return out
}

// HasScenario reports whether any folded session carries the scenario.
func (p *Partials) HasScenario(scenario string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sessions {
		if s.Scenario == scenario {
			return true
		}
	}
	return false
}

// ArmUnion returns the sorted union of arm names across the (scenario-
// filtered) sessions — the validation set for arm and ABR query
// filters. Unlike the report's arm list (first session's order) it sees
// arms any session ran.
func (p *Partials) ArmUnion(scenario string) []string {
	seen := make(map[string]bool)
	for _, s := range p.view(scenario) {
		for i := range s.Arms {
			seen[s.Arms[i].Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// partialArmNames mirrors armNamesOf: the arm names of the first
// session (in view order) that ran any arms.
func partialArmNames(rows []*PartialSession) []string {
	for _, s := range rows {
		if len(s.Arms) > 0 {
			names := make([]string, len(s.Arms))
			for i := range s.Arms {
				names[i] = s.Arms[i].Name
			}
			return names
		}
	}
	return nil
}

// partialSeries mirrors seriesOf: per-session values for one arm under
// one estimator, in view order, with per-session arm multiplicity
// preserved.
func partialSeries(rows []*PartialSession, arm string, est ArmEstimator, m int) []float64 {
	var out []float64
	for _, s := range rows {
		for i := range s.Arms {
			if s.Arms[i].Name != arm {
				continue
			}
			if v, ok := s.Arms[i].value(est, m); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// partialCoverage mirrors coverageOf from the stored cells.
func partialCoverage(rows []*PartialSession, arm string, m int, slack float64) float64 {
	var n, covered int
	for _, s := range rows {
		for i := range s.Arms {
			a := &s.Arms[i]
			if a.Name != arm || !a.HasTruth {
				continue
			}
			n++
			if t := a.Truth[m]; t >= a.Low[m]-slack && t <= a.High[m]+slack {
				covered++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(covered) / float64(n)
}

// Report builds the aggregate report from the partials — byte-identical
// (after JSON encoding) to Aggregator.Report over the same rows.
// scenario empty means all sessions, mirroring AggregateScenario.
func (p *Partials) Report(scenario string) *Report {
	return p.ReportFiltered(scenario, nil)
}

// ReportFiltered is Report restricted to the arms armOK accepts (nil
// accepts all) — the /v1/report?abr= filter. The unfiltered report is
// the byte-identity-pinned one; a filtered report is the same blocks
// minus the excluded arms.
func (p *Partials) ReportFiltered(scenario string, armOK func(string) bool) *Report {
	rows := p.view(scenario)
	rep := &Report{Sessions: len(rows)}
	for _, arm := range partialArmNames(rows) {
		if armOK != nil && !armOK(arm) {
			continue
		}
		ar := ArmAggregate{Arm: arm}
		for m, met := range reportMetrics {
			ma := MetricAggregate{Metric: met.label, Estimators: map[ArmEstimator]Summary{}}
			for _, est := range reportEstimators {
				if s := Summarize(partialSeries(rows, arm, est, m)); s.N > 0 {
					ma.Estimators[est] = s
				}
			}
			if _, ok := ma.Estimators[EstTruth]; ok {
				c := partialCoverage(rows, arm, m, met.slack)
				ma.Coverage = &c
				ma.CoverageSlack = met.slack
			}
			ar.Metrics = append(ar.Metrics, ma)
		}
		rep.Arms = append(rep.Arms, ar)
	}
	var preds []float64
	for _, s := range rows {
		preds = append(preds, s.Predictions...)
	}
	if len(preds) > 0 {
		s := Summarize(preds)
		rep.Predictions = &s
	}
	return rep
}

// Series returns the per-session values of one report metric under the
// given estimator for one arm, in corpus order — what the CDF, series
// and percentile endpoints serve. m indexes ReportMetrics.
func (p *Partials) Series(scenario, arm string, est ArmEstimator, m int) []float64 {
	if m < 0 || m >= len(reportMetrics) {
		return nil
	}
	return partialSeries(p.view(scenario), arm, est, m)
}

// ReportMetric describes one metric column of the fleet report.
type ReportMetric struct {
	Key   string  // query-surface spelling ("ssim", "rebuf", "bitrate")
	Label string  // report row label ("SSIM", "rebuf %", "bitrate Mbps")
	Scale float64 // display multiplier
	Slack float64 // coverage slack in the metric's native unit
}

// ReportMetrics lists the report's metric columns in report order; the
// slice index is the m parameter of Series.
func ReportMetrics() []ReportMetric {
	out := make([]ReportMetric, len(reportMetrics))
	for i, m := range reportMetrics {
		out[i] = ReportMetric{Key: m.key, Label: m.label, Scale: m.scale, Slack: m.slack}
	}
	return out
}

// MetricIndex resolves a metric spelling — the query key
// (case-insensitive) or the exact report label — to its reportMetrics
// index.
func MetricIndex(name string) (int, bool) {
	for i, m := range reportMetrics {
		if strings.EqualFold(name, m.key) || name == m.label {
			return i, true
		}
	}
	return 0, false
}

// Estimators lists every arm estimator the query surface accepts.
func Estimators() []ArmEstimator {
	return []ArmEstimator{EstTruth, EstBaseline, EstVeritasLow, EstVeritasHigh, EstVeritasMid}
}

// ParseEstimator resolves an estimator spelling.
func ParseEstimator(name string) (ArmEstimator, bool) {
	for _, est := range Estimators() {
		if ArmEstimator(name) == est {
			return est, true
		}
	}
	return "", false
}
