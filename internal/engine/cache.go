package engine

import (
	"sort"

	"veritas/internal/tcp"
)

// CacheStats counts emission-memoization cache activity.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Lookups returns the total number of estimator calls seen.
func (c CacheStats) Lookups() uint64 { return c.Hits + c.Misses }

// HitRate returns Hits / Lookups, or 0 when the cache saw no traffic.
func (c CacheStats) HitRate() float64 {
	n := c.Lookups()
	if n == 0 {
		return 0
	}
	return float64(c.Hits) / float64(n)
}

// chunkKey identifies a chunk's fixed estimator inputs: the TCP state
// logged at its start and its size. The remaining input — the candidate
// GTBW — varies along the capacity grid within a row.
type chunkKey struct {
	cwnd     float64
	ssthresh float64
	minRTT   float64
	rtt      float64
	rto      float64
	gap      float64
	size     float64
}

// estRow caches one chunk's emission row: f(c, W, S) for every grid
// capacity c, kept sorted by capacity. cursor tracks the sequential
// scan position so repeat passes cost one comparison per call.
type estRow struct {
	gtbws  []float64 // ascending
	vals   []float64
	cursor int
}

// estimatorCache memoizes tcp.EstimateThroughput for one session's
// abduction. Abductions that fit transitions evaluate the emission
// table twice (once for the EM interval chain, once for single-pass
// inference), and chunks sharing a TCP state and size hit each other's
// rows within a pass, so the cache still removes repeated estimator
// work even though standard inference now computes the table once.
//
// f is pure, so equal inputs always give equal outputs and memoization
// cannot change any inference result. The layout exploits the table's
// access pattern instead of hashing the full argument tuple per call:
// the chunk loop is outer and the capacity loop inner and ascending, so
// the cache resolves the chunk row once per key change (struct
// equality, no hashing) and serves in-row lookups from a cursor, with a
// binary-search fallback for out-of-order access.
//
// The cache is deliberately unsynchronized: each session job runs on a
// single worker goroutine. Engine workers own one cache each and reset
// it between sessions, recycling the row storage through a freelist so
// memory stays bounded at O(states × chunks of the largest session)
// however large the corpus is.
type estimatorCache struct {
	rows         map[chunkKey]*estRow
	free         []*estRow // emptied rows awaiting reuse after a reset
	lastKey      chunkKey
	lastRow      *estRow
	hits, misses uint64
}

func newEstimatorCache() *estimatorCache {
	return &estimatorCache{rows: make(map[chunkKey]*estRow)}
}

// reset prepares the cache for the next session: rows return to the
// freelist with their slice capacity intact, the map keeps its buckets,
// and the counters zero. A reset cache answers every lookup exactly as
// a fresh one — recycled rows start empty — so per-session results are
// independent of how many sessions a worker ran before.
func (c *estimatorCache) reset() {
	if c.rows == nil {
		c.rows = make(map[chunkKey]*estRow)
	}
	for k, r := range c.rows {
		r.gtbws = r.gtbws[:0]
		r.vals = r.vals[:0]
		r.cursor = 0
		c.free = append(c.free, r)
		delete(c.rows, k)
	}
	c.lastKey = chunkKey{}
	c.lastRow = nil
	c.hits, c.misses = 0, 0
}

// release drops the cached rows. A retained Abduction keeps the
// estimator closure (and so this cache) alive in its config; nothing
// after inference re-evaluates emissions, so the engine releases the
// storage once the abduction returns. Later calls, if any ever happen,
// fall through to the direct estimator.
func (c *estimatorCache) release() {
	c.rows = nil
	c.lastRow = nil
}

// estimate has the signature of hmm.Config.Estimator.
func (c *estimatorCache) estimate(gtbwMbps float64, st tcp.State, sizeBytes float64) float64 {
	if c.rows == nil {
		return tcp.EstimateThroughput(gtbwMbps, st, sizeBytes)
	}
	k := chunkKey{
		cwnd:     st.CWND,
		ssthresh: st.SSThresh,
		minRTT:   st.MinRTT,
		rtt:      st.RTT,
		rto:      st.RTO,
		gap:      st.LastSendGap,
		size:     sizeBytes,
	}
	row := c.lastRow
	if row == nil || k != c.lastKey {
		row = c.rows[k]
		if row == nil {
			if n := len(c.free); n > 0 {
				row = c.free[n-1]
				c.free = c.free[:n-1]
			} else {
				row = &estRow{}
			}
			c.rows[k] = row
		}
		row.cursor = 0 // a key change starts a fresh scan of the row
		c.lastKey, c.lastRow = k, row
	}

	// Hot path: repeat passes read the row in the same ascending order
	// it was built in.
	if row.cursor < len(row.gtbws) && row.gtbws[row.cursor] == gtbwMbps {
		v := row.vals[row.cursor]
		row.cursor++
		c.hits++
		return v
	}
	// Build path: the first pass appends capacities in ascending order.
	if n := len(row.gtbws); row.cursor == n && (n == 0 || gtbwMbps > row.gtbws[n-1]) {
		v := tcp.EstimateThroughput(gtbwMbps, st, sizeBytes)
		row.gtbws = append(row.gtbws, gtbwMbps)
		row.vals = append(row.vals, v)
		row.cursor = n + 1
		c.misses++
		return v
	}
	// Fallback: out-of-order access (e.g. two chunks sharing a key
	// within one pass). Binary search; insert sorted on miss.
	i := sort.SearchFloat64s(row.gtbws, gtbwMbps)
	if i < len(row.gtbws) && row.gtbws[i] == gtbwMbps {
		row.cursor = i + 1
		c.hits++
		return row.vals[i]
	}
	v := tcp.EstimateThroughput(gtbwMbps, st, sizeBytes)
	row.gtbws = append(row.gtbws, 0)
	copy(row.gtbws[i+1:], row.gtbws[i:])
	row.gtbws[i] = gtbwMbps
	row.vals = append(row.vals, 0)
	copy(row.vals[i+1:], row.vals[i:])
	row.vals[i] = v
	row.cursor = i + 1
	c.misses++
	return v
}

func (c *estimatorCache) stats() CacheStats {
	return CacheStats{Hits: c.hits, Misses: c.misses}
}
