package engine

import (
	"time"

	"veritas/internal/mathx"
	"veritas/internal/telemetry"
)

// engineMetrics holds the engine's resolved metric handles, looked up
// once per Run so the worker hot path records with single atomic adds.
// The struct is always non-nil (callers read its fields); with
// telemetry off every handle is nil — a no-op — and enabled gates the
// clock reads, so uninstrumented runs pay nothing. Nothing recorded
// here feeds back into computation, which is what keeps fleet results
// byte-identical with telemetry on and off.
type engineMetrics struct {
	enabled bool

	simulate *telemetry.Histogram
	abduct   *telemetry.Histogram
	replay   *telemetry.Histogram
	predict  *telemetry.Histogram
	session  *telemetry.Histogram

	sessions    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	powerHits   *telemetry.Counter
	powerMisses *telemetry.Counter
	// The power-cache miss split by cause: cold misses are healthy
	// one-per-grid warmup, collision and capacity misses repeat on
	// every lookup and indicate a thrashing registry. The plain
	// powerMisses total stays for dashboard compatibility.
	powerColdMisses      *telemetry.Counter
	powerCollisionMisses *telemetry.Counter
	powerCapacityMisses  *telemetry.Counter
}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	// A nil registry hands out nil (no-op) metrics, so the handles below
	// are all nil exactly when enabled is false.
	return &engineMetrics{
		enabled: reg != nil,

		simulate: reg.Histogram(`veritas_engine_stage_seconds{stage="simulate"}`),
		abduct:   reg.Histogram(`veritas_engine_stage_seconds{stage="abduct"}`),
		replay:   reg.Histogram(`veritas_engine_stage_seconds{stage="replay"}`),
		predict:  reg.Histogram(`veritas_engine_stage_seconds{stage="predict"}`),
		session:  reg.Histogram("veritas_engine_session_seconds"),

		sessions:    reg.Counter("veritas_engine_sessions_completed_total"),
		cacheHits:   reg.Counter("veritas_engine_emission_cache_hits_total"),
		cacheMisses: reg.Counter("veritas_engine_emission_cache_misses_total"),
		powerHits:   reg.Counter("veritas_engine_power_cache_hits_total"),
		powerMisses: reg.Counter("veritas_engine_power_cache_misses_total"),

		powerColdMisses:      reg.Counter(`veritas_engine_power_cache_miss_total{cause="cold"}`),
		powerCollisionMisses: reg.Counter(`veritas_engine_power_cache_miss_total{cause="collision"}`),
		powerCapacityMisses:  reg.Counter(`veritas_engine_power_cache_miss_total{cause="capacity"}`),
	}
}

// now is the stage clock: zero when telemetry is off, so uninstrumented
// runs pay no clock reads at all. The zero time is never observed —
// every histogram that could see it is nil when enabled is false.
func (m *engineMetrics) now() time.Time {
	if !m.enabled {
		return time.Time{}
	}
	return time.Now()
}

// observe records elapsed time since t0 into h (no-op when off).
func (m *engineMetrics) observe(h *telemetry.Histogram, t0 time.Time) {
	h.Since(t0)
}

// sessionDone records one completed session: its wall time, its
// emission-cache traffic, and the throughput counter.
func (m *engineMetrics) sessionDone(t0 time.Time, cache CacheStats) {
	m.session.Since(t0)
	m.sessions.Inc()
	m.cacheHits.Add(cache.Hits)
	m.cacheMisses.Add(cache.Misses)
}

// powers records the run's shared transition-power cache delta, both
// the legacy hit/miss totals and the per-cause miss split.
func (m *engineMetrics) powers(p mathx.SharedPowersStats) {
	m.powerHits.Add(p.Hits)
	m.powerMisses.Add(p.Misses())
	m.powerColdMisses.Add(p.ColdMisses)
	m.powerCollisionMisses.Add(p.CollisionMisses)
	m.powerCapacityMisses.Add(p.CapacityMisses)
}
