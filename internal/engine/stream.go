package engine

import "context"

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(SessionResult) error

func (f sinkFunc) Put(r SessionResult) error { return f(r) }

// Stream runs the fleet like Run but delivers every completed session's
// compact row on the returned channel, in completion order, as workers
// finish — the iterator-friendly path for consumers that must never
// hold the whole corpus in memory. Result.Sessions is left empty
// (DiscardResults is forced); any Sink already set in cfg still
// receives every full result before its row is sent.
//
// The channel is unbuffered and closes when the run ends. The caller
// must drain it (or cancel ctx): an abandoned, undrained channel blocks
// the workers until ctx is cancelled. wait blocks until the run ends
// and returns what Run would have.
func Stream(ctx context.Context, cfg Config, corpus []SessionSpec, arms []Arm) (<-chan SessionRow, func() (*Result, error)) {
	rows := make(chan SessionRow)
	prev := cfg.Sink
	cfg.Sink = sinkFunc(func(r SessionResult) error {
		if prev != nil {
			if err := prev.Put(r); err != nil {
				return err
			}
		}
		select {
		case rows <- r.Row():
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	cfg.DiscardResults = true

	var (
		res  *Result
		err  error
		done = make(chan struct{})
	)
	go func() {
		defer close(done)
		defer close(rows)
		res, err = Run(ctx, cfg, corpus, arms)
	}()
	return rows, func() (*Result, error) { <-done; return res, err }
}
