package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("worker started", "shard", 2)
	if out := buf.String(); !strings.Contains(out, "msg=\"worker started\"") || !strings.Contains(out, "shard=2") {
		t.Errorf("text log = %q", out)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("worker started", "shard", 2)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json log line does not parse: %v (%q)", err, buf.String())
	}
	if line["msg"] != "worker started" || line["shard"] != float64(2) {
		t.Errorf("json log line = %v", line)
	}
}

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("chatty")
	if buf.Len() != 0 {
		t.Errorf("info line printed at warn level: %q", buf.String())
	}
	log.Warn("important")
	if !strings.Contains(buf.String(), "important") {
		t.Errorf("warn line missing: %q", buf.String())
	}

	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	// Defaults: empty strings mean text/info.
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Errorf("empty format/level rejected: %v", err)
	}
}

func TestWriteTelemetrySummaryOneLine(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTelemetrySummary(&buf, map[string]float64{
		"veritas_engine_sessions_completed_total": 32,
		"veritas_store_appends_total":             32,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 1 || !strings.HasSuffix(out, "\n") {
		t.Fatalf("summary is not one line: %q", out)
	}
	var parsed struct {
		Telemetry map[string]float64 `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("summary does not parse: %v (%q)", err, out)
	}
	if parsed.Telemetry["veritas_engine_sessions_completed_total"] != 32 {
		t.Errorf("summary = %v", parsed.Telemetry)
	}
}
