// Package cli holds the observability veneer shared by the command
// binaries (cmd/fleet, cmd/serve): structured-logger construction from
// the -log/-log-level flags, and the one-line JSON telemetry summary
// both commands flush to stderr on clean shutdown.
package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the slog.Logger behind the -log and -log-level
// flags: format "text" (the default, human-oriented key=value lines)
// or "json" (one JSON object per line, for log shippers); level one of
// "debug", "info", "warn", "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (have text, json)", format)
	}
}

// WriteTelemetrySummary flushes one line of JSON — the flattened
// telemetry summary map under a "telemetry" key — to w. Commands call
// it on clean shutdown (opt-out with -quiet) so every run leaves a
// machine-readable digest of what it did, whatever the -log format.
// encoding/json sorts map keys, so the line is deterministic for a
// given snapshot.
func WriteTelemetrySummary(w io.Writer, summary map[string]float64) error {
	b, err := json.Marshal(struct {
		Telemetry map[string]float64 `json:"telemetry"`
	}{summary})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(b))
	return err
}
