//go:build !unix

package dispatch

import (
	"os"
	"os/exec"
)

// isolate is a no-op where process groups are unavailable.
func isolate(*exec.Cmd) {}

// terminate on platforms without SIGTERM delivery: there is no
// graceful signal to forward, so kill outright. Finished sessions are
// already durable in the shard store; the restart-resume machinery
// treats this like any other crash.
func terminate(p *os.Process, _ bool) {
	p.Kill()
}

// kill forcibly ends a worker process.
func kill(p *os.Process, _ bool) {
	p.Kill()
}
