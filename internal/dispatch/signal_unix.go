//go:build unix

package dispatch

import (
	"os"
	"os/exec"
	"syscall"
)

// isolate puts the worker in its own process group, so (a) a terminal
// Ctrl-C reaches only the supervisor, which forwards an orderly
// terminate instead of racing the workers' own signal handlers, and
// (b) terminate/kill reach the whole worker process tree — a grandchild
// holding the stdout pipe open would otherwise wedge the supervisor's
// scanner after the worker itself died.
func isolate(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// terminate asks a worker to shut down gracefully: SIGTERM, which the
// worker entrypoint (and cmd/fleet) traps to cancel its run and sync
// its store. grouped says the worker was isolated into its own process
// group (see Config.KeepProcessGroup), in which case the whole group is
// signaled. The supervisor escalates to kill after the grace period.
func terminate(p *os.Process, grouped bool) {
	if grouped {
		syscall.Kill(-p.Pid, syscall.SIGTERM)
		return
	}
	p.Signal(syscall.SIGTERM)
}

// kill forcibly ends a worker (or, when grouped, its process group).
func kill(p *os.Process, grouped bool) {
	if grouped {
		syscall.Kill(-p.Pid, syscall.SIGKILL)
		return
	}
	p.Kill()
}
