package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Status folds the supervisor's event stream into a queryable fleet
// view: per-shard progress, restart and exit accounting, and the latest
// telemetry snapshot each worker streamed up the protocol. Feed every
// Event to Handle (chain it in front of any other Config.OnEvent
// consumer) and serve Handler on the dispatcher's status listener:
//
//	GET /v1/status  per-shard progress + merged telemetry, as JSON
//	GET /metrics    supervisor registry merged with every worker's
//	                latest snapshot, in Prometheus text format
//	GET /v1/trace   the fleet-wide "slowest sessions" view — supervisor
//	                traces merged with every worker's latest notable
//	                set — as Chrome trace-event JSON (Perfetto-loadable)
//
// The merged /metrics view is what makes a dispatched campaign
// observable from one scrape target: engine stage histograms and store
// counters recorded *inside* the worker processes are summed across
// shards and exposed next to the supervisor's own shard gauges.
type Status struct {
	mu     sync.Mutex
	start  time.Time
	shards []ShardStatus
	snaps  []telemetry.Snapshot
	// traces[i] is shard i's latest streamed notable-trace set. Sets are
	// cumulative (a worker's whole tail sample each time), so keeping
	// only the latest per shard and merging at query time cannot
	// double-count a re-streamed trace.
	traces [][]tracing.Trace
	total  int // restarts across all shards
	steals int // lease revocations across all shards
	folded int
	// agents, when set, supplies the fleet agent rows at snapshot time
	// (the fleetd dispatcher's lease table knows liveness; the event
	// stream alone does not).
	agents func() []AgentStatus

	reg *telemetry.Registry
	trc *tracing.Tracer
	// per-shard handles (nil without a registry; nil metrics no-op)
	gDone, gTotal, gBackoff []*telemetry.Gauge
	cRestarts               *telemetry.Counter
}

// ShardStatus is one shard's slot in the fleet view.
type ShardStatus struct {
	Shard int `json:"shard"`
	// State is "pending" (never started), "running", "backoff"
	// (crashed, awaiting relaunch), "done", or "crashed" (exited
	// non-zero; babysit decides between backoff and permanent failure).
	// Fleet dispatches add "leased" (handed to an agent, no progress
	// yet) and "stolen" (the lease was revoked and the shard is back in
	// the pending queue awaiting another agent).
	State string `json:"state"`
	PID   int    `json:"pid,omitempty"`
	// Attempt is 1-based (the protocol's Worker.Attempt is 0-based),
	// matching the supervisor's "worker started (attempt N)" log lines.
	Attempt  int `json:"attempt"`
	Done     int `json:"done"`
	Total    int `json:"total"`
	Restarts int `json:"restarts"`
	// LastError is the most recent exit error (crashed workers).
	LastError string `json:"lastError,omitempty"`
	// Agent and Epoch identify the current (or last) lease holder in a
	// fleet dispatch; both zero for local dispatches.
	Agent string `json:"agent,omitempty"`
	Epoch int    `json:"epoch,omitempty"`
	// Steals counts how many times this shard's lease was revoked and
	// re-queued (missed heartbeats or straggler deadline).
	Steals int `json:"steals,omitempty"`
}

// AgentStatus is one fleet agent's row in the status view, supplied by
// the fleetd dispatcher's lease table via SetAgentSource.
type AgentStatus struct {
	Agent string `json:"agent"`
	// State is "alive" (heartbeating), "idle" (registered, no lease),
	// or "lost" (missed enough heartbeats that a lease was revoked).
	State string `json:"state"`
	// Shards are the shard indexes the agent currently holds leases on.
	Shards []int `json:"shards,omitempty"`
	// Completed counts shard stores this agent uploaded and had
	// accepted.
	Completed int `json:"completed"`
	// LastSeenSeconds is how long ago the agent last registered,
	// requested a lease, heartbeated, or uploaded.
	LastSeenSeconds float64 `json:"lastSeenSeconds"`
}

// StatusSnapshot is a point-in-time capture of the fleet view.
type StatusSnapshot struct {
	Shards []ShardStatus `json:"shards"`
	// Agents are the fleet agent rows (networked dispatches only; local
	// dispatches have no agents).
	Agents   []AgentStatus `json:"agents,omitempty"`
	Done     int           `json:"done"`
	Total    int           `json:"total"`
	Restarts int           `json:"restarts"`
	// Steals counts lease revocations across all shards (fleet
	// dispatches; the work-stealing analogue of Restarts).
	Steals int `json:"steals,omitempty"`
	Folded int `json:"folded,omitempty"`
	// ElapsedSeconds is wall-clock time since the tracker was built
	// (the supervisor builds it just before Run).
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// Telemetry is the merged fleet registry: the supervisor's own
	// metrics summed with every shard's latest worker snapshot.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// NewStatus builds a tracker for a dispatch of the given shard count.
// reg, which may be nil, is the supervisor-side registry: the tracker
// maintains per-shard progress gauges and a restart counter in it, and
// merges it with worker snapshots when serving. trc, which may also be
// nil, is the supervisor-side tracer; /v1/trace serves it merged with
// the workers' streamed trace sets.
func NewStatus(shards int, reg *telemetry.Registry, trc *tracing.Tracer) *Status {
	st := &Status{
		start:  time.Now(),
		shards: make([]ShardStatus, shards),
		snaps:  make([]telemetry.Snapshot, shards),
		traces: make([][]tracing.Trace, shards),
		reg:    reg,
		trc:    trc,
	}
	for i := range st.shards {
		st.shards[i] = ShardStatus{Shard: i, State: "pending"}
	}
	if reg != nil {
		st.gDone = make([]*telemetry.Gauge, shards)
		st.gTotal = make([]*telemetry.Gauge, shards)
		st.gBackoff = make([]*telemetry.Gauge, shards)
		for i := 0; i < shards; i++ {
			st.gDone[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_sessions_done{shard=%q}", fmt.Sprint(i)))
			st.gTotal[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_sessions{shard=%q}", fmt.Sprint(i)))
			st.gBackoff[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_backoff{shard=%q}", fmt.Sprint(i)))
		}
		st.cRestarts = reg.Counter("veritas_dispatch_restarts_total")
	}
	return st
}

// Handle folds one supervisor event into the view. Config.OnEvent
// serializes its calls, so Handle contends only with snapshot readers.
func (st *Status) Handle(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e.Type == EventFold {
		st.folded = e.Done
		return
	}
	if e.Shard < 0 || e.Shard >= len(st.shards) {
		return
	}
	s := &st.shards[e.Shard]
	if e.Agent != "" {
		s.Agent = e.Agent
	}
	if e.Epoch > 0 {
		s.Epoch = e.Epoch
	}
	switch e.Type {
	case EventStart:
		s.State = "running"
		s.PID = e.PID
		s.Attempt = e.Attempt + 1
		st.backoffGauge(e.Shard, 0)
	case EventProgress:
		s.State = "running"
		s.Done, s.Total = e.Done, e.Total
		if st.gDone != nil {
			st.gDone[e.Shard].Set(float64(e.Done))
			st.gTotal[e.Shard].Set(float64(e.Total))
		}
	case EventLease:
		s.State = "leased"
		s.LastError = ""
	case EventSteal:
		s.State = "stolen"
		s.Steals++
		st.steals++
		if e.Err != nil {
			s.LastError = e.Err.Error()
		}
		if st.reg != nil {
			st.reg.Counter("veritas_fleet_steals_total").Inc()
		}
	case EventUpload:
		s.State = "done"
		s.Done = e.Done
		if s.Total < e.Done {
			s.Total = e.Done
		}
		s.LastError = ""
		if st.gDone != nil {
			st.gDone[e.Shard].Set(float64(e.Done))
		}
	case EventExit:
		if e.Err == nil {
			s.State = "done"
			s.LastError = ""
		} else {
			s.State = "crashed"
			s.LastError = e.Err.Error()
		}
		st.exitCounter(e.Shard, e.Err == nil)
	case EventRestart:
		s.State = "backoff"
		s.Restarts++
		st.total++
		st.cRestarts.Inc()
		st.backoffGauge(e.Shard, e.Delay.Seconds())
	case EventTelemetry:
		if e.Telemetry != nil {
			st.snaps[e.Shard] = *e.Telemetry
		}
	case EventTraces:
		st.traces[e.Shard] = e.Traces
	}
}

// backoffGauge publishes the shard's current restart backoff in
// seconds (0 once it is running again). Caller holds mu.
func (st *Status) backoffGauge(shard int, secs float64) {
	if st.gBackoff != nil {
		st.gBackoff[shard].Set(secs)
	}
}

// exitCounter counts worker exits by outcome. Caller holds mu.
func (st *Status) exitCounter(shard int, ok bool) {
	if st.reg == nil {
		return
	}
	outcome := "crash"
	if ok {
		outcome = "ok"
	}
	st.reg.Counter(fmt.Sprintf("veritas_dispatch_worker_exits_total{shard=%q,outcome=%q}", fmt.Sprint(shard), outcome)).Inc()
}

// SetAgentSource registers fn as the supplier of fleet agent rows;
// Snapshot calls it (outside st.mu) so /v1/status shows live agent
// liveness from the fleetd dispatcher's lease table. Call before the
// first Snapshot; nil leaves agent rows off (local dispatches).
func (st *Status) SetAgentSource(fn func() []AgentStatus) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.agents = fn
}

// Snapshot captures the current fleet view.
func (st *Status) Snapshot() StatusSnapshot {
	// The supervisor registry snapshot is taken outside st.mu: callback
	// metrics may take arbitrary locks.
	merged := st.reg.Snapshot()
	st.mu.Lock()
	agents := st.agents
	out := StatusSnapshot{
		Shards:         append([]ShardStatus(nil), st.shards...),
		Restarts:       st.total,
		Steals:         st.steals,
		Folded:         st.folded,
		ElapsedSeconds: time.Since(st.start).Seconds(),
	}
	for _, s := range st.shards {
		out.Done += s.Done
		out.Total += s.Total
	}
	snaps := append([]telemetry.Snapshot(nil), st.snaps...)
	st.mu.Unlock()
	for _, snap := range snaps {
		merged = merged.Merge(snap)
	}
	out.Telemetry = merged
	if agents != nil {
		out.Agents = agents()
	}
	return out
}

// WorkerTraces returns each shard's latest streamed notable-trace set
// (nil slots for shards that streamed none yet). The facade stashes
// these after a dispatch so Campaign.Trace keeps serving the fleet view.
func (st *Status) WorkerTraces() [][]tracing.Trace {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([][]tracing.Trace, len(st.traces))
	for i, set := range st.traces {
		out[i] = append([]tracing.Trace(nil), set...)
	}
	return out
}

// Traces merges the supervisor's own traces with every worker's latest
// streamed set into the fleet-wide "slowest sessions" view, under the
// supervisor tracer's tail-sampling policy.
func (st *Status) Traces() []tracing.Trace {
	sets := st.WorkerTraces()
	return tracing.Merge(st.trc.Keep(), append([][]tracing.Trace{st.trc.Traces()}, sets...)...)
}

// Handler serves the fleet view over HTTP: /v1/status (JSON),
// /metrics (Prometheus text, the merged fleet registry), and /v1/trace
// (the merged fleet trace set as Chrome trace-event JSON).
func (st *Status) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		body, err := json.Marshal(st.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st.Snapshot().Telemetry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tracing.WriteChrome(w, st.Traces()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
