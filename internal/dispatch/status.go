package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Status folds the supervisor's event stream into a queryable fleet
// view: per-shard progress, restart and exit accounting, and the latest
// telemetry snapshot each worker streamed up the protocol. Feed every
// Event to Handle (chain it in front of any other Config.OnEvent
// consumer) and serve Handler on the dispatcher's status listener:
//
//	GET /v1/status  per-shard progress + merged telemetry, as JSON
//	GET /metrics    supervisor registry merged with every worker's
//	                latest snapshot, in Prometheus text format
//	GET /v1/trace   the fleet-wide "slowest sessions" view — supervisor
//	                traces merged with every worker's latest notable
//	                set — as Chrome trace-event JSON (Perfetto-loadable)
//
// The merged /metrics view is what makes a dispatched campaign
// observable from one scrape target: engine stage histograms and store
// counters recorded *inside* the worker processes are summed across
// shards and exposed next to the supervisor's own shard gauges.
type Status struct {
	mu     sync.Mutex
	start  time.Time
	shards []ShardStatus
	snaps  []telemetry.Snapshot
	// traces[i] is shard i's latest streamed notable-trace set. Sets are
	// cumulative (a worker's whole tail sample each time), so keeping
	// only the latest per shard and merging at query time cannot
	// double-count a re-streamed trace.
	traces [][]tracing.Trace
	total  int // restarts across all shards
	folded int

	reg *telemetry.Registry
	trc *tracing.Tracer
	// per-shard handles (nil without a registry; nil metrics no-op)
	gDone, gTotal, gBackoff []*telemetry.Gauge
	cRestarts               *telemetry.Counter
}

// ShardStatus is one shard's slot in the fleet view.
type ShardStatus struct {
	Shard int `json:"shard"`
	// State is "pending" (never started), "running", "backoff"
	// (crashed, awaiting relaunch), "done", or "crashed" (exited
	// non-zero; babysit decides between backoff and permanent failure).
	State string `json:"state"`
	PID   int    `json:"pid,omitempty"`
	// Attempt is 1-based (the protocol's Worker.Attempt is 0-based),
	// matching the supervisor's "worker started (attempt N)" log lines.
	Attempt  int `json:"attempt"`
	Done     int `json:"done"`
	Total    int `json:"total"`
	Restarts int `json:"restarts"`
	// LastError is the most recent exit error (crashed workers).
	LastError string `json:"lastError,omitempty"`
}

// StatusSnapshot is a point-in-time capture of the fleet view.
type StatusSnapshot struct {
	Shards   []ShardStatus `json:"shards"`
	Done     int           `json:"done"`
	Total    int           `json:"total"`
	Restarts int           `json:"restarts"`
	Folded   int           `json:"folded,omitempty"`
	// ElapsedSeconds is wall-clock time since the tracker was built
	// (the supervisor builds it just before Run).
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// Telemetry is the merged fleet registry: the supervisor's own
	// metrics summed with every shard's latest worker snapshot.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// NewStatus builds a tracker for a dispatch of the given shard count.
// reg, which may be nil, is the supervisor-side registry: the tracker
// maintains per-shard progress gauges and a restart counter in it, and
// merges it with worker snapshots when serving. trc, which may also be
// nil, is the supervisor-side tracer; /v1/trace serves it merged with
// the workers' streamed trace sets.
func NewStatus(shards int, reg *telemetry.Registry, trc *tracing.Tracer) *Status {
	st := &Status{
		start:  time.Now(),
		shards: make([]ShardStatus, shards),
		snaps:  make([]telemetry.Snapshot, shards),
		traces: make([][]tracing.Trace, shards),
		reg:    reg,
		trc:    trc,
	}
	for i := range st.shards {
		st.shards[i] = ShardStatus{Shard: i, State: "pending"}
	}
	if reg != nil {
		st.gDone = make([]*telemetry.Gauge, shards)
		st.gTotal = make([]*telemetry.Gauge, shards)
		st.gBackoff = make([]*telemetry.Gauge, shards)
		for i := 0; i < shards; i++ {
			st.gDone[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_sessions_done{shard=%q}", fmt.Sprint(i)))
			st.gTotal[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_sessions{shard=%q}", fmt.Sprint(i)))
			st.gBackoff[i] = reg.Gauge(fmt.Sprintf("veritas_dispatch_shard_backoff{shard=%q}", fmt.Sprint(i)))
		}
		st.cRestarts = reg.Counter("veritas_dispatch_restarts_total")
	}
	return st
}

// Handle folds one supervisor event into the view. Config.OnEvent
// serializes its calls, so Handle contends only with snapshot readers.
func (st *Status) Handle(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e.Type == EventFold {
		st.folded = e.Done
		return
	}
	if e.Shard < 0 || e.Shard >= len(st.shards) {
		return
	}
	s := &st.shards[e.Shard]
	switch e.Type {
	case EventStart:
		s.State = "running"
		s.PID = e.PID
		s.Attempt = e.Attempt + 1
		st.backoffGauge(e.Shard, 0)
	case EventProgress:
		s.Done, s.Total = e.Done, e.Total
		if st.gDone != nil {
			st.gDone[e.Shard].Set(float64(e.Done))
			st.gTotal[e.Shard].Set(float64(e.Total))
		}
	case EventExit:
		if e.Err == nil {
			s.State = "done"
			s.LastError = ""
		} else {
			s.State = "crashed"
			s.LastError = e.Err.Error()
		}
		st.exitCounter(e.Shard, e.Err == nil)
	case EventRestart:
		s.State = "backoff"
		s.Restarts++
		st.total++
		st.cRestarts.Inc()
		st.backoffGauge(e.Shard, e.Delay.Seconds())
	case EventTelemetry:
		if e.Telemetry != nil {
			st.snaps[e.Shard] = *e.Telemetry
		}
	case EventTraces:
		st.traces[e.Shard] = e.Traces
	}
}

// backoffGauge publishes the shard's current restart backoff in
// seconds (0 once it is running again). Caller holds mu.
func (st *Status) backoffGauge(shard int, secs float64) {
	if st.gBackoff != nil {
		st.gBackoff[shard].Set(secs)
	}
}

// exitCounter counts worker exits by outcome. Caller holds mu.
func (st *Status) exitCounter(shard int, ok bool) {
	if st.reg == nil {
		return
	}
	outcome := "crash"
	if ok {
		outcome = "ok"
	}
	st.reg.Counter(fmt.Sprintf("veritas_dispatch_worker_exits_total{shard=%q,outcome=%q}", fmt.Sprint(shard), outcome)).Inc()
}

// Snapshot captures the current fleet view.
func (st *Status) Snapshot() StatusSnapshot {
	// The supervisor registry snapshot is taken outside st.mu: callback
	// metrics may take arbitrary locks.
	merged := st.reg.Snapshot()
	st.mu.Lock()
	out := StatusSnapshot{
		Shards:         append([]ShardStatus(nil), st.shards...),
		Restarts:       st.total,
		Folded:         st.folded,
		ElapsedSeconds: time.Since(st.start).Seconds(),
	}
	for _, s := range st.shards {
		out.Done += s.Done
		out.Total += s.Total
	}
	snaps := append([]telemetry.Snapshot(nil), st.snaps...)
	st.mu.Unlock()
	for _, snap := range snaps {
		merged = merged.Merge(snap)
	}
	out.Telemetry = merged
	return out
}

// WorkerTraces returns each shard's latest streamed notable-trace set
// (nil slots for shards that streamed none yet). The facade stashes
// these after a dispatch so Campaign.Trace keeps serving the fleet view.
func (st *Status) WorkerTraces() [][]tracing.Trace {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([][]tracing.Trace, len(st.traces))
	for i, set := range st.traces {
		out[i] = append([]tracing.Trace(nil), set...)
	}
	return out
}

// Traces merges the supervisor's own traces with every worker's latest
// streamed set into the fleet-wide "slowest sessions" view, under the
// supervisor tracer's tail-sampling policy.
func (st *Status) Traces() []tracing.Trace {
	sets := st.WorkerTraces()
	return tracing.Merge(st.trc.Keep(), append([][]tracing.Trace{st.trc.Traces()}, sets...)...)
}

// Handler serves the fleet view over HTTP: /v1/status (JSON),
// /metrics (Prometheus text, the merged fleet registry), and /v1/trace
// (the merged fleet trace set as Chrome trace-event JSON).
func (st *Status) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		body, err := json.Marshal(st.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st.Snapshot().Telemetry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tracing.WriteChrome(w, st.Traces()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
