package dispatch

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sync"

	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

func TestStatusTracksShardLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStatus(2, reg, nil)

	st.Handle(Event{Type: EventStart, Shard: 0, Attempt: 0, PID: 41})
	st.Handle(Event{Type: EventStart, Shard: 1, Attempt: 0, PID: 42})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 3, Total: 6})
	st.Handle(Event{Type: EventProgress, Shard: 1, Done: 2, Total: 6})
	st.Handle(Event{Type: EventExit, Shard: 1, Err: errors.New("signal: killed")})
	st.Handle(Event{Type: EventRestart, Shard: 1, Attempt: 1, Delay: 500 * time.Millisecond})
	st.Handle(Event{Type: EventTelemetry, Shard: 0, Telemetry: &telemetry.Snapshot{
		Counters: map[string]uint64{"veritas_engine_sessions_completed_total": 3},
	}})
	// Events for shards outside the fleet must be ignored, not panic.
	st.Handle(Event{Type: EventProgress, Shard: 9, Done: 1, Total: 1})

	snap := st.Snapshot()
	if snap.Done != 5 || snap.Total != 12 || snap.Restarts != 1 {
		t.Errorf("fleet totals = %d/%d restarts %d, want 5/12 restarts 1",
			snap.Done, snap.Total, snap.Restarts)
	}
	s0, s1 := snap.Shards[0], snap.Shards[1]
	if s0.State != "running" || s0.PID != 41 || s0.Attempt != 1 || s0.Done != 3 {
		t.Errorf("shard 0 = %+v", s0)
	}
	if s1.State != "backoff" || s1.Restarts != 1 || s1.LastError != "signal: killed" {
		t.Errorf("shard 1 = %+v", s1)
	}

	// The merged telemetry view: supervisor gauges plus the worker's
	// streamed snapshot.
	tel := snap.Telemetry
	if tel.Counters["veritas_engine_sessions_completed_total"] != 3 {
		t.Errorf("worker snapshot not merged: %v", tel.Counters)
	}
	if tel.Gauges[`veritas_dispatch_shard_sessions_done{shard="0"}`] != 3 {
		t.Errorf("supervisor gauges missing: %v", tel.Gauges)
	}
	if tel.Gauges[`veritas_dispatch_shard_backoff{shard="1"}`] != 0.5 {
		t.Errorf("backoff gauge = %v, want 0.5", tel.Gauges[`veritas_dispatch_shard_backoff{shard="1"}`])
	}
	if tel.Counters["veritas_dispatch_restarts_total"] != 1 {
		t.Errorf("restart counter = %v", tel.Counters["veritas_dispatch_restarts_total"])
	}
	if tel.Counters[`veritas_dispatch_worker_exits_total{shard="1",outcome="crash"}`] != 1 {
		t.Errorf("exit counter missing: %v", tel.Counters)
	}

	// A later worker snapshot replaces the previous one (latest wins,
	// no double counting).
	st.Handle(Event{Type: EventTelemetry, Shard: 0, Telemetry: &telemetry.Snapshot{
		Counters: map[string]uint64{"veritas_engine_sessions_completed_total": 5},
	}})
	if got := st.Snapshot().Telemetry.Counters["veritas_engine_sessions_completed_total"]; got != 5 {
		t.Errorf("replacement snapshot merged to %d, want 5", got)
	}
}

func TestStatusWithoutRegistry(t *testing.T) {
	st := NewStatus(1, nil, nil)
	st.Handle(Event{Type: EventStart, Shard: 0, PID: 7})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 1, Total: 2})
	st.Handle(Event{Type: EventExit, Shard: 0})
	st.Handle(Event{Type: EventFold, Shard: -1, Done: 2})
	snap := st.Snapshot()
	if snap.Shards[0].State != "done" || snap.Done != 1 || snap.Folded != 2 {
		t.Errorf("snapshot without registry = %+v", snap)
	}
}

func TestStatusHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStatus(1, reg, nil)
	st.Handle(Event{Type: EventStart, Shard: 0, PID: 9})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 4, Total: 4})
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("status content type = %q", ct)
	}
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Done != 4 || len(snap.Shards) != 1 || snap.Shards[0].State != "running" {
		t.Errorf("served snapshot = %+v", snap)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `veritas_dispatch_shard_sessions_done{shard="0"} 4`) {
		t.Errorf("metrics text missing shard gauge:\n%s", body)
	}
}

func TestStatusMergesWorkerTraces(t *testing.T) {
	trc := tracing.New(4)
	st := NewStatus(2, nil, trc)

	wall := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	mk := func(id string, shard int, dur float64) tracing.Trace {
		return tracing.Trace{Kind: "session", ID: id, Shard: shard, Wall: wall, Dur: dur}
	}
	st.Handle(Event{Type: EventTraces, Shard: 0, Traces: []tracing.Trace{mk("s0", 0, 0.5)}})
	st.Handle(Event{Type: EventTraces, Shard: 1, Traces: []tracing.Trace{mk("s1", 1, 0.9)}})
	// A re-streamed cumulative set replaces, never duplicates.
	st.Handle(Event{Type: EventTraces, Shard: 0, Traces: []tracing.Trace{mk("s0", 0, 0.5), mk("s2", 0, 0.1)}})

	got := st.Traces()
	if len(got) != 3 {
		t.Fatalf("merged %d traces, want 3: %+v", len(got), got)
	}
	if got[0].ID != "s1" || got[1].ID != "s0" || got[2].ID != "s2" {
		t.Errorf("merged order = %s, %s, %s; want s1, s0, s2 (slowest first)",
			got[0].ID, got[1].ID, got[2].ID)
	}

	// The /v1/trace endpoint serves the merged set as parseable Chrome
	// trace-event JSON.
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/v1/trace content type = %q", ct)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("/v1/trace does not parse: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Error("/v1/trace served no events")
	}
}

// TestStatusConcurrentScrapeDuringTransitions is the torn-snapshot
// gate: /v1/status, /metrics and /v1/trace are scraped concurrently
// while the supervisor drives shards through the full
// start -> progress -> crash -> restart -> fold lifecycle. Run under
// -race; every scrape must parse and be internally consistent.
func TestStatusConcurrentScrapeDuringTransitions(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStatus(3, reg, tracing.New(8))
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string, check func([]byte) error) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return
			}
			if err := check(body); err != nil {
				t.Errorf("%s: %v (body %.200s)", path, err, body)
				return
			}
		}
	}
	wg.Add(3)
	go scrape("/v1/status", func(b []byte) error {
		var snap StatusSnapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			return err
		}
		if len(snap.Shards) != 3 {
			return errors.New("torn snapshot: shard list truncated")
		}
		if snap.Done > snap.Total {
			return errors.New("torn snapshot: done exceeds total")
		}
		return nil
	})
	go scrape("/metrics", func(b []byte) error {
		if len(b) == 0 {
			return errors.New("empty exposition")
		}
		return nil
	})
	go scrape("/v1/trace", func(b []byte) error {
		var file struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		return json.Unmarshal(b, &file)
	})

	wall := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for round := 0; round < 50; round++ {
		for shard := 0; shard < 3; shard++ {
			st.Handle(Event{Type: EventStart, Shard: shard, Attempt: round, PID: 100 + shard})
			st.Handle(Event{Type: EventProgress, Shard: shard, Done: round, Total: 50})
			st.Handle(Event{Type: EventTelemetry, Shard: shard, Telemetry: &telemetry.Snapshot{
				Counters: map[string]uint64{"veritas_engine_sessions_completed_total": uint64(round)},
			}})
			st.Handle(Event{Type: EventTraces, Shard: shard, Traces: []tracing.Trace{
				{Kind: "session", ID: "s", Shard: shard, Wall: wall, Dur: float64(round) / 100},
			}})
			st.Handle(Event{Type: EventExit, Shard: shard, Err: errors.New("crash")})
			st.Handle(Event{Type: EventRestart, Shard: shard, Attempt: round + 1, Delay: time.Millisecond})
			st.Handle(Event{Type: EventStart, Shard: shard, Attempt: round + 1, PID: 200 + shard})
			st.Handle(Event{Type: EventExit, Shard: shard})
		}
		st.Handle(Event{Type: EventFold, Shard: -1, Done: 3 * (round + 1)})
	}
	close(stop)
	wg.Wait()
}
