package dispatch

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"veritas/internal/telemetry"
)

func TestStatusTracksShardLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStatus(2, reg)

	st.Handle(Event{Type: EventStart, Shard: 0, Attempt: 0, PID: 41})
	st.Handle(Event{Type: EventStart, Shard: 1, Attempt: 0, PID: 42})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 3, Total: 6})
	st.Handle(Event{Type: EventProgress, Shard: 1, Done: 2, Total: 6})
	st.Handle(Event{Type: EventExit, Shard: 1, Err: errors.New("signal: killed")})
	st.Handle(Event{Type: EventRestart, Shard: 1, Attempt: 1, Delay: 500 * time.Millisecond})
	st.Handle(Event{Type: EventTelemetry, Shard: 0, Telemetry: &telemetry.Snapshot{
		Counters: map[string]uint64{"veritas_engine_sessions_completed_total": 3},
	}})
	// Events for shards outside the fleet must be ignored, not panic.
	st.Handle(Event{Type: EventProgress, Shard: 9, Done: 1, Total: 1})

	snap := st.Snapshot()
	if snap.Done != 5 || snap.Total != 12 || snap.Restarts != 1 {
		t.Errorf("fleet totals = %d/%d restarts %d, want 5/12 restarts 1",
			snap.Done, snap.Total, snap.Restarts)
	}
	s0, s1 := snap.Shards[0], snap.Shards[1]
	if s0.State != "running" || s0.PID != 41 || s0.Attempt != 1 || s0.Done != 3 {
		t.Errorf("shard 0 = %+v", s0)
	}
	if s1.State != "backoff" || s1.Restarts != 1 || s1.LastError != "signal: killed" {
		t.Errorf("shard 1 = %+v", s1)
	}

	// The merged telemetry view: supervisor gauges plus the worker's
	// streamed snapshot.
	tel := snap.Telemetry
	if tel.Counters["veritas_engine_sessions_completed_total"] != 3 {
		t.Errorf("worker snapshot not merged: %v", tel.Counters)
	}
	if tel.Gauges[`veritas_dispatch_shard_sessions_done{shard="0"}`] != 3 {
		t.Errorf("supervisor gauges missing: %v", tel.Gauges)
	}
	if tel.Gauges[`veritas_dispatch_shard_backoff{shard="1"}`] != 0.5 {
		t.Errorf("backoff gauge = %v, want 0.5", tel.Gauges[`veritas_dispatch_shard_backoff{shard="1"}`])
	}
	if tel.Counters["veritas_dispatch_restarts_total"] != 1 {
		t.Errorf("restart counter = %v", tel.Counters["veritas_dispatch_restarts_total"])
	}
	if tel.Counters[`veritas_dispatch_worker_exits_total{shard="1",outcome="crash"}`] != 1 {
		t.Errorf("exit counter missing: %v", tel.Counters)
	}

	// A later worker snapshot replaces the previous one (latest wins,
	// no double counting).
	st.Handle(Event{Type: EventTelemetry, Shard: 0, Telemetry: &telemetry.Snapshot{
		Counters: map[string]uint64{"veritas_engine_sessions_completed_total": 5},
	}})
	if got := st.Snapshot().Telemetry.Counters["veritas_engine_sessions_completed_total"]; got != 5 {
		t.Errorf("replacement snapshot merged to %d, want 5", got)
	}
}

func TestStatusWithoutRegistry(t *testing.T) {
	st := NewStatus(1, nil)
	st.Handle(Event{Type: EventStart, Shard: 0, PID: 7})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 1, Total: 2})
	st.Handle(Event{Type: EventExit, Shard: 0})
	st.Handle(Event{Type: EventFold, Shard: -1, Done: 2})
	snap := st.Snapshot()
	if snap.Shards[0].State != "done" || snap.Done != 1 || snap.Folded != 2 {
		t.Errorf("snapshot without registry = %+v", snap)
	}
}

func TestStatusHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStatus(1, reg)
	st.Handle(Event{Type: EventStart, Shard: 0, PID: 9})
	st.Handle(Event{Type: EventProgress, Shard: 0, Done: 4, Total: 4})
	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("status content type = %q", ct)
	}
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Done != 4 || len(snap.Shards) != 1 || snap.Shards[0].State != "running" {
		t.Errorf("served snapshot = %+v", snap)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `veritas_dispatch_shard_sessions_done{shard="0"} 4`) {
		t.Errorf("metrics text missing shard gauge:\n%s", body)
	}
}
