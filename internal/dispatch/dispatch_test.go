//go:build unix

package dispatch

// Supervisor lifecycle coverage with scripted fake workers: progress
// protocol parsing, crash-restart-resume with backoff, restart-budget
// exhaustion, partial-shard layout detection, fold replacement rules,
// and graceful cancellation. The end-to-end equivalence of a dispatched
// campaign (real workers, a mid-run kill, byte-identical reports) is
// pinned one layer up, in the veritas package's dispatch harness.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"veritas/internal/engine"
	"veritas/internal/player"
	"veritas/internal/store"
)

// collector gathers supervisor events; Run serializes OnEvent calls,
// but the test goroutine reads concurrently, hence the lock.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) add(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collector) byType(t EventType) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// testRow builds a minimal aggregatable session row.
func testRow(i int) engine.SessionRow {
	m := player.Metrics{AvgSSIM: 0.9 + float64(i)*1e-3, RebufRatio: 0.01 * float64(i%5), AvgBitrateMbps: 2, NumChunks: 30}
	return engine.SessionRow{
		Index:     i,
		ID:        fmt.Sprintf("fcc-%03d", i),
		Scenario:  "fcc",
		Simulated: true,
		SettingA:  m,
		Arms:      []engine.ArmOutcome{{Name: "bba-5s", Baseline: m, Samples: []player.Metrics{m}, Truth: m, HasTruth: true}},
	}
}

// sh builds a Command factory that runs script through sh for every
// worker attempt.
func sh(script string) func(Worker) (*exec.Cmd, error) {
	return func(Worker) (*exec.Cmd, error) {
		return exec.Command("sh", "-c", script), nil
	}
}

// makeShardStore lays a complete shard store (rows + shard.json, and
// optionally a campaign fingerprint) into dir, as a finished worker
// would have left it.
func makeShardStore(t *testing.T, dir string, meta ShardMetaLike, rows []int, fingerprint []byte) {
	t.Helper()
	s, err := store.Create(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range rows {
		if err := s.Append(testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteShardMeta(dir, store.ShardMeta{Index: meta.Index, Count: meta.Count}); err != nil {
		t.Fatal(err)
	}
	if fingerprint != nil {
		if err := os.WriteFile(filepath.Join(dir, store.CampaignMetaFile), fingerprint, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// ShardMetaLike avoids importing the store type at every call site.
type ShardMetaLike struct{ Index, Count int }

// prepShards pre-creates complete shard stores under dir, so a
// no-op worker ("sh -c true") stands in for one that already finished.
func prepShards(t *testing.T, dir string, shards int, fingerprint []byte) {
	t.Helper()
	row := 0
	for i := 0; i < shards; i++ {
		rows := []int{row, row + 1}
		row += 2
		makeShardStore(t, ShardDir(dir, i), ShardMetaLike{Index: i, Count: shards}, rows, fingerprint)
	}
}

func TestDispatchSuccessAndFold(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	dst := filepath.Join(t.TempDir(), "folded.store")
	fp := []byte(`{"Seed": 7}`)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	prepShards(t, dir, 2, fp)

	var got collector
	res, err := Run(context.Background(), Config{
		Shards:   2,
		Dir:      dir,
		FoldInto: dst,
		Backoff:  time.Millisecond,
		OnEvent:  got.add,
		Command: sh(`printf '{"type":"progress","done":1,"total":2}\n'
printf '{"type":"progress","done":2,"total":2}\n'
echo not-a-protocol-line
echo worker-stderr >&2`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 4 {
		t.Errorf("folded %d sessions, want 4", res.Folded)
	}
	if res.Restarts != 0 {
		t.Errorf("counted %d restarts on a clean run", res.Restarts)
	}
	if len(res.ShardDirs) != 2 || res.ShardDirs[0] != ShardDir(dir, 0) {
		t.Errorf("shard dirs = %v", res.ShardDirs)
	}

	if n := len(got.byType(EventStart)); n != 2 {
		t.Errorf("%d start events, want 2", n)
	}
	prog := got.byType(EventProgress)
	if len(prog) != 4 {
		t.Fatalf("%d progress events, want 4: %+v", len(prog), prog)
	}
	for _, e := range prog {
		if e.Total != 2 || e.Done < 1 || e.Done > 2 || e.PID == 0 {
			t.Errorf("bad progress event %+v", e)
		}
	}
	var stdout, stderr int
	for _, e := range got.byType(EventLine) {
		switch {
		case e.Stream == "stdout" && e.Line == "not-a-protocol-line":
			stdout++
		case e.Stream == "stderr" && e.Line == "worker-stderr":
			stderr++
		}
	}
	if stdout != 2 || stderr != 2 {
		t.Errorf("forwarded %d stdout / %d stderr lines, want 2/2", stdout, stderr)
	}
	folds := got.byType(EventFold)
	if len(folds) != 1 || folds[0].Done != 4 {
		t.Errorf("fold events = %+v", folds)
	}

	// The folded store is the whole campaign: fingerprint kept, shard
	// assignment dropped, all rows present.
	if _, ok, _ := store.ReadShardMeta(dst); ok {
		t.Error("folded store still carries shard.json")
	}
	ro, err := store.Open(dst, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Len() != 4 {
		t.Errorf("folded store holds %d rows, want 4", ro.Len())
	}
}

func TestDispatchRestartResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	prepShards(t, dir, 2, nil)

	var got collector
	res, err := Run(context.Background(), Config{
		Shards:      2,
		Dir:         dir,
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
		OnEvent:     got.add,
		Command: func(w Worker) (*exec.Cmd, error) {
			// Shard 1 crashes on its first attempt; the relaunch (the
			// "resume") succeeds.
			if w.Shard == 1 && w.Attempt == 0 {
				return exec.Command("sh", "-c", "echo crashing >&2; exit 7"), nil
			}
			return exec.Command("sh", "-c", "true"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Errorf("counted %d restarts, want 1", res.Restarts)
	}
	restarts := got.byType(EventRestart)
	if len(restarts) != 1 || restarts[0].Shard != 1 || restarts[0].Delay <= 0 || restarts[0].Err == nil {
		t.Errorf("restart events = %+v", restarts)
	}
	var crashExits int
	for _, e := range got.byType(EventExit) {
		if e.Err != nil {
			crashExits++
			if !strings.Contains(e.Err.Error(), "exit status 7") {
				t.Errorf("crash exit err = %v", e.Err)
			}
		}
	}
	if crashExits != 1 {
		t.Errorf("%d crash exits, want 1", crashExits)
	}
}

func TestDispatchRestartBudgetExhaustion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	dst := filepath.Join(t.TempDir(), "folded.store")
	var got collector
	_, err := Run(context.Background(), Config{
		Shards:      1,
		Dir:         dir,
		FoldInto:    dst,
		MaxRestarts: 2,
		Backoff:     time.Millisecond,
		OnEvent:     got.add,
		Command:     sh("exit 3"),
	})
	if err == nil {
		t.Fatal("a permanently failing shard dispatched successfully")
	}
	if !strings.Contains(err.Error(), "failed permanently after 3 attempt(s)") {
		t.Errorf("err = %v, want the exhausted budget spelled out", err)
	}
	if n := len(got.byType(EventRestart)); n != 2 {
		t.Errorf("%d restart events, want 2 (the budget)", n)
	}
	if n := len(got.byType(EventStart)); n != 3 {
		t.Errorf("%d start events, want 3 (first launch + 2 restarts)", n)
	}
	if _, statErr := os.Stat(dst); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("fold ran despite the failure: %v", statErr)
	}
	// The backoff must actually grow: with base 1ms the second restart
	// waits 2ms.
	restarts := got.byType(EventRestart)
	if restarts[0].Delay != time.Millisecond || restarts[1].Delay != 2*time.Millisecond {
		t.Errorf("backoff delays = %v, %v; want 1ms then 2ms", restarts[0].Delay, restarts[1].Delay)
	}
}

func TestDispatchZeroRestartBudget(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Shards:  1,
		Dir:     filepath.Join(t.TempDir(), "shards"),
		Command: sh("exit 1"),
		Backoff: time.Millisecond,
		// MaxRestarts 0 means "no restarts", not "default": the zero
		// value must not silently become DefaultMaxRestarts.
		MaxRestarts: 0,
	})
	if err == nil || !strings.Contains(err.Error(), "after 1 attempt(s)") {
		t.Errorf("err = %v, want failure on the first attempt with no restarts", err)
	}
}

func TestDispatchPartialShardDetection(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	// A leftover from a 3-shard layout must refuse a 2-shard dispatch
	// before any worker starts.
	makeShardStore(t, ShardDir(dir, 0), ShardMetaLike{Index: 0, Count: 3}, []int{0}, nil)
	spawned := 0
	_, err := Run(context.Background(), Config{
		Shards: 2,
		Dir:    dir,
		Command: func(Worker) (*exec.Cmd, error) {
			spawned++
			return exec.Command("sh", "-c", "true"), nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "previous layout") {
		t.Errorf("stale shard layout accepted: err = %v", err)
	}
	if spawned != 0 {
		t.Errorf("%d workers spawned despite the stale layout", spawned)
	}

	// A stray shard store under a name its index does not own is
	// likewise refused.
	dir2 := filepath.Join(t.TempDir(), "shards")
	makeShardStore(t, filepath.Join(dir2, "elsewhere.store"), ShardMetaLike{Index: 0, Count: 2}, []int{0}, nil)
	_, err = Run(context.Background(), Config{Shards: 2, Dir: dir2, Command: sh("true")})
	if err == nil || !strings.Contains(err.Error(), "stray") {
		t.Errorf("stray shard store accepted: err = %v", err)
	}
}

func TestDispatchRefusesSilentlyEmptyShard(t *testing.T) {
	// A "worker" that exits 0 without leaving a stamped shard store —
	// a host binary that forgot DispatchWorkerMain, say — must fail the
	// dispatch, not fold an incomplete campaign.
	_, err := Run(context.Background(), Config{
		Shards:  2,
		Dir:     filepath.Join(t.TempDir(), "shards"),
		Command: sh("true"),
	})
	if err == nil || !strings.Contains(err.Error(), "left no shard store") {
		t.Errorf("empty-shard success accepted: err = %v", err)
	}
}

func TestDispatchFoldReplacement(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	dst := filepath.Join(t.TempDir(), "folded.store")
	fp := []byte(`{"Seed": 7}`)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	prepShards(t, dir, 2, fp)
	cfg := Config{Shards: 2, Dir: dir, FoldInto: dst, Backoff: time.Millisecond, Command: sh("true")}

	// First dispatch folds; a rerun replaces its own stale fold.
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("re-dispatch over a previous fold: %v", err)
	}
	if res.Folded != 4 {
		t.Errorf("refold kept %d sessions, want 4", res.Folded)
	}

	// A destination holding a *different* campaign is refused — at
	// preflight, before any worker is spawned, because the shard stores
	// already carry their fingerprint: burning a whole campaign only to
	// refuse the fold would waste the run.
	other := filepath.Join(t.TempDir(), "other.store")
	makeShardStore(t, other, ShardMetaLike{Index: 0, Count: 1}, []int{9}, []byte(`{"Seed": 99}`))
	if err := os.Remove(filepath.Join(other, store.ShardMetaFile)); err != nil {
		t.Fatal(err)
	}
	cfg.FoldInto = other
	spawned := 0
	cfg.Command = func(Worker) (*exec.Cmd, error) {
		spawned++
		return exec.Command("sh", "-c", "true"), nil
	}
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("fold replaced someone else's store: err = %v", err)
	}
	if spawned != 0 {
		t.Errorf("%d workers spawned before the irreplaceable fold destination was detected", spawned)
	}

	// A non-empty destination with no campaign.json at all is likewise
	// refused up front.
	plain := t.TempDir()
	if err := os.WriteFile(filepath.Join(plain, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.FoldInto = plain
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "no campaign.json") {
		t.Errorf("fold aimed at a fingerprint-less directory: err = %v", err)
	}
	if spawned != 0 {
		t.Errorf("%d workers spawned before the fingerprint-less fold destination was detected", spawned)
	}

	// But a fresh dispatch (shard stores not stamped yet) into an
	// absent destination must not be refused by the preflight.
	fresh := Config{
		Shards:   1,
		Dir:      filepath.Join(t.TempDir(), "shards"),
		FoldInto: filepath.Join(t.TempDir(), "new.store"),
		Command:  sh("true"),
	}
	makeShardStore(t, ShardDir(fresh.Dir, 0), ShardMetaLike{Index: 0, Count: 1}, []int{0}, nil)
	if _, err := Run(context.Background(), fresh); err != nil {
		t.Errorf("fresh dispatch refused at preflight: %v", err)
	}
}

// TestDispatchFingerprintPreflight: with Config.Fingerprints set (the
// campaign layer always knows its own campaign.json), a fold
// destination holding a different campaign is refused before any
// worker runs, even when the shard stores haven't been stamped yet —
// a fresh multi-hour dispatch must not compute everything and then
// refuse to fold.
func TestDispatchFingerprintPreflight(t *testing.T) {
	otherFP, ourFP := []byte(`{"Seed": 99}`), []byte(`{"Seed": 7}`)
	mkDst := func() string {
		dst := filepath.Join(t.TempDir(), "prev.store")
		makeShardStore(t, dst, ShardMetaLike{Index: 0, Count: 1}, []int{0}, otherFP)
		if err := os.Remove(filepath.Join(dst, store.ShardMetaFile)); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	spawned := 0
	cfg := Config{
		Shards:       1,
		Dir:          filepath.Join(t.TempDir(), "shards"), // fresh: nothing stamped
		FoldInto:     mkDst(),
		Fingerprints: [][]byte{ourFP},
		Command: func(Worker) (*exec.Cmd, error) {
			spawned++
			return exec.Command("sh", "-c", "true"), nil
		},
	}
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Errorf("mismatched destination passed preflight: err = %v", err)
	}
	if spawned != 0 {
		t.Errorf("%d workers spawned before the mismatched destination was detected", spawned)
	}

	// A destination carrying one of our acceptable fingerprints is
	// replaceable; the dispatch proceeds and refolds over it. Trailing
	// slashes on Dir/FoldInto must not nest derived paths inside them.
	dir := filepath.Join(t.TempDir(), "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	makeShardStore(t, ShardDir(dir, 0), ShardMetaLike{Index: 0, Count: 1}, []int{1}, ourFP)
	dst := filepath.Join(t.TempDir(), "prev.store")
	makeShardStore(t, dst, ShardMetaLike{Index: 0, Count: 1}, []int{0}, ourFP)
	if err := os.Remove(filepath.Join(dst, store.ShardMetaFile)); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Shards:       1,
		Dir:          dir + string(os.PathSeparator),
		FoldInto:     dst + string(os.PathSeparator),
		Fingerprints: [][]byte{ourFP},
		Command:      sh("true"),
	})
	if err != nil {
		t.Fatalf("matching destination refused: %v", err)
	}
	if res.Folded != 1 {
		t.Errorf("refold kept %d sessions, want 1", res.Folded)
	}
	if _, statErr := os.Stat(filepath.Join(dst, "..", "prev.store.folding")); !os.IsNotExist(statErr) {
		t.Error("fold temporary left behind")
	}
}

// TestDispatchOverlongOutputLine: a worker line past the scanner's cap
// must not wedge the supervisor — the pipe keeps draining, the worker
// exits, and the truncation is surfaced as a line event.
func TestDispatchOverlongOutputLine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	prepShards(t, dir, 1, nil)
	var got collector
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), Config{
			Shards:  1,
			Dir:     dir,
			OnEvent: got.add,
			// One 2MB line (no newline until the end), then more output
			// the scanner will never see but the drain must swallow.
			Command: sh("head -c 2000000 /dev/zero | tr '\\0' x; echo; echo after >&2"),
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervisor wedged on an overlong worker line")
	}
	found := false
	for _, e := range got.byType(EventLine) {
		if strings.Contains(e.Line, "scan aborted") {
			found = true
		}
	}
	if !found {
		t.Error("overlong line was discarded without a truncation event")
	}
}

func TestDispatchCancellation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "shards")
	ctx, cancel := context.WithCancel(context.Background())
	var got collector
	started := make(chan struct{}, 2)
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{
			Shards: 2,
			Dir:    dir,
			Grace:  100 * time.Millisecond,
			OnEvent: func(e Event) {
				got.add(e)
				if e.Type == EventStart {
					started <- struct{}{}
				}
			},
			Command: sh("sleep 60"),
		})
		done <- err
	}()
	<-started
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled dispatch returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled dispatch did not return (workers not terminated?)")
	}
	// The cancellation-induced exits must not count as crash restarts.
	if n := len(got.byType(EventRestart)); n != 0 {
		t.Errorf("%d restart events after cancellation, want 0", n)
	}
}

func TestDispatchConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero shards": {Dir: "x", Command: sh("true")},
		"no command":  {Shards: 1, Dir: "x"},
		"no dir":      {Shards: 1, Command: sh("true")},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
