// Package dispatch is the shard supervisor of the Veritas fleet: the
// control plane that turns the manual multi-process runbook — launch
// one `fleet -shard i/n` per machine, wait, copy the stores together,
// fold — into a single supervised lifecycle on one machine.
//
// Run spawns one worker process per shard, each writing its slice of
// the campaign into its own store directory under Config.Dir, and
// babysits them:
//
//   - Progress streaming. Worker stdout is scanned for the NDJSON
//     progress protocol ({"type":"progress","done":D,"total":T});
//     protocol lines become Progress events, everything else (and all
//     of stderr) becomes Line events, so the supervisor's caller sees
//     one merged, labeled event stream for the whole fleet.
//   - Crash restarts. A worker that exits non-zero (or dies on a
//     signal) is relaunched into the same store directory after an
//     exponential backoff, up to MaxRestarts times. Workers run their
//     campaigns with resume-from-store semantics, so a restart
//     recomputes only the sessions the crash lost — finished sessions
//     are already durable in the shard store.
//   - Signal forwarding. When ctx is cancelled (the operator's Ctrl-C
//     or SIGTERM), every live worker is terminated gracefully and
//     given Grace to sync its store before being killed.
//   - Fold-after-supervision. Once every shard has completed, the
//     shard stores are folded — ordered by recorded shard index, so
//     the result is deterministic — into FoldInto, yielding one corpus
//     whose aggregate report is byte-identical to a single-process run
//     of the same campaign.
//
// The supervisor also enforces the shard layout before spawning
// anything: a store directory under Dir left by a different shard
// assignment (a previous run with another shard count, or a stray
// store) is detected via its shard.json and refused, because resuming
// workers into mispartitioned stores would corrupt the campaign.
package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// Defaults for the restart policy and shutdown grace.
const (
	DefaultMaxRestarts = 2
	DefaultBackoff     = 500 * time.Millisecond
	DefaultGrace       = 5 * time.Second
	maxBackoff         = 30 * time.Second
)

// Worker identifies one spawn attempt: shard Shard of Shards, attempt
// Attempt (0 is the first launch), writing into StoreDir. Command
// factories receive it to build the process for that attempt.
type Worker struct {
	Shard    int
	Shards   int
	Attempt  int
	StoreDir string
}

// Config parameterizes a supervised dispatch.
type Config struct {
	// Shards is the number of worker processes (and corpus shards).
	Shards int
	// Dir is the parent directory the per-shard stores live under, as
	// ShardDir lays them out. Created if missing.
	Dir string
	// FoldInto, when non-empty, is the store directory the shard stores
	// are folded into after every shard completes. An existing FoldInto
	// is replaced only when its campaign.json matches the shards' (a
	// previous fold of this same campaign, reproducible from the shard
	// stores sitting next to it); anything else is refused.
	FoldInto string
	// Fingerprints, when set, are the acceptable campaign.json forms of
	// the campaign being dispatched. They make the FoldInto
	// replaceability check decidable before any worker runs even when
	// the shard stores haven't been stamped yet (a fresh dispatch), so
	// a destination holding a different campaign fails fast instead of
	// after the whole campaign computed.
	Fingerprints [][]byte
	// Command builds the process for one worker attempt. The supervisor
	// owns the process's stdout/stderr (do not set them) and its
	// lifecycle. Required.
	Command func(w Worker) (*exec.Cmd, error)
	// MaxRestarts is the per-shard crash-restart budget (not counting
	// the first launch); zero disables restarts, negative means
	// DefaultMaxRestarts. A shard that fails MaxRestarts+1 times fails
	// the dispatch and cancels its siblings.
	MaxRestarts int
	// Backoff is the delay before the first restart; it doubles per
	// subsequent restart of the same shard, capped at 30s. Zero or
	// negative means DefaultBackoff.
	Backoff time.Duration
	// Grace is how long a terminated worker gets to exit (and sync its
	// store) before it is killed. Zero or negative means DefaultGrace.
	Grace time.Duration
	// OnEvent, when set, receives the merged lifecycle/progress/log
	// event stream. Calls are serialized by the supervisor, so the
	// callback needs no locking of its own.
	OnEvent func(Event)
	// Tracer, when set, records supervisor-side traces: one per worker
	// attempt (spawn → exit, errored on crash), one per restart backoff
	// wait, and the fold (threaded into store.Fold). Worker-side session
	// traces arrive separately as EventTraces; a Status tracker merges
	// both into the fleet view. Nil means supervisor tracing off.
	Tracer *tracing.Tracer
	// KeepProcessGroup leaves workers in the supervisor's own process
	// group instead of isolating each into its own. A terminal-run
	// dispatcher wants isolation (Ctrl-C must reach only the
	// supervisor); a fleet agent wants the opposite — its workers must
	// die with it, so that SIGKILLing the agent's process group leaves
	// no orphan still writing into the agent's store directories.
	// Cancellation then signals the worker process directly rather than
	// its (non-existent) group.
	KeepProcessGroup bool
}

func (c Config) maxRestarts() int {
	if c.MaxRestarts < 0 {
		return DefaultMaxRestarts
	}
	return c.MaxRestarts
}

func (c Config) backoff(attempt int) time.Duration {
	d := c.Backoff
	if d <= 0 {
		d = DefaultBackoff
	}
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	return d
}

func (c Config) grace() time.Duration {
	if c.Grace <= 0 {
		return DefaultGrace
	}
	return c.Grace
}

// EventType labels a supervisor event.
type EventType string

const (
	// EventStart: a worker process started (PID set).
	EventStart EventType = "start"
	// EventProgress: a worker reported Done of Total sessions.
	EventProgress EventType = "progress"
	// EventLine: one non-protocol output line from a worker (Line set;
	// Stream says which of "stdout"/"stderr" it came from).
	EventLine EventType = "line"
	// EventExit: a worker exited; Err is nil on success.
	EventExit EventType = "exit"
	// EventRestart: a crashed worker will be relaunched after Delay.
	EventRestart EventType = "restart"
	// EventFold: the shard stores were folded; Done is the session
	// count of the folded corpus.
	EventFold EventType = "fold"
	// EventTelemetry: a worker streamed a telemetry snapshot up the
	// protocol (Telemetry set). Snapshots are cumulative per attempt;
	// a Status tracker merges the latest one per shard into the
	// supervisor's fleet view.
	EventTelemetry EventType = "telemetry"
	// EventTraces: a worker streamed its notable-trace set up the
	// protocol (Traces set). Like telemetry snapshots the set is
	// cumulative — the worker's current tail sample, not a delta — so a
	// Status tracker keeps the latest set per shard and merges at query
	// time, which makes re-streaming duplication-free by construction.
	EventTraces EventType = "traces"

	// Fleet lifecycle events, synthesized by a fleetd dispatcher from
	// its lease table so one Status tracker renders local and networked
	// dispatches alike.

	// EventLease: a shard was leased to an agent (Agent, Epoch set).
	EventLease EventType = "lease"
	// EventSteal: a lease expired (missed heartbeats, or a straggler
	// past the hard deadline) and the shard went back to the pending
	// queue for re-leasing. Agent/Epoch identify the lease that was
	// revoked; Err says why.
	EventSteal EventType = "steal"
	// EventUpload: an agent's shard store upload was verified and
	// accepted (Done carries its session count). The shard is complete.
	EventUpload EventType = "upload"
)

// Event is one entry of the supervisor's merged event stream.
type Event struct {
	Type    EventType
	Shard   int
	Attempt int
	// PID is the worker process id (start, progress, line, exit).
	PID int
	// Done/Total carry progress counts (progress) and the folded
	// session count (fold, in Done).
	Done, Total int
	// Line and Stream carry forwarded worker output (line events).
	Line   string
	Stream string
	// Delay is the backoff before the relaunch (restart events).
	Delay time.Duration
	// Err is the worker's exit error (exit events of crashed workers).
	Err error
	// Telemetry is the worker's metrics snapshot (telemetry events).
	Telemetry *telemetry.Snapshot
	// Traces is the worker's notable-trace set (traces events).
	Traces []tracing.Trace
	// Agent names the fleet agent the event concerns (fleet events, and
	// progress/telemetry/traces relayed over the wire by a fleetd
	// dispatcher). Empty for local dispatches.
	Agent string
	// Epoch is the lease epoch the event belongs to (fleet events).
	// Epochs fence stale agents: a heartbeat or upload carrying an
	// older epoch than the lease table's is rejected.
	Epoch int
}

// Result summarizes a completed dispatch.
type Result struct {
	// ShardDirs are the per-shard store directories, in shard order.
	ShardDirs []string
	// Restarts counts crash-relaunches across all shards.
	Restarts int
	// Folded is the session count of the folded store (0 when folding
	// was disabled).
	Folded int
	// Elapsed is the wall-clock time of the whole dispatch.
	Elapsed time.Duration
}

// ShardDir returns the store directory shard i of a dispatch rooted at
// dir writes into: dir/shard-<i>.store.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.store", i))
}

// Run executes a supervised dispatch: spawn every shard's worker,
// babysit crashes with restart-resume, then fold. The first shard to
// exhaust its restart budget cancels the others (their stores stay
// resumable); ctx cancellation terminates every worker gracefully and
// returns ctx's error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dispatch: shard count %d must be at least 1", cfg.Shards)
	}
	if cfg.Command == nil {
		return nil, errors.New("dispatch: Config.Command is required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("dispatch: Config.Dir is required")
	}
	// A trailing slash would derive paths *inside* the directories they
	// should sit next to ("c.store/" + ".folding").
	cfg.Dir = filepath.Clean(cfg.Dir)
	if cfg.FoldInto != "" {
		cfg.FoldInto = filepath.Clean(cfg.FoldInto)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	dirs := make([]string, cfg.Shards)
	for i := range dirs {
		dirs[i] = ShardDir(cfg.Dir, i)
	}
	if err := checkLayout(cfg.Dir, dirs, cfg.Shards); err != nil {
		return nil, err
	}
	if cfg.FoldInto != "" {
		// Fail fast on a fold destination that can never be replaced —
		// discovering that only after a multi-hour campaign would waste
		// the whole run. Lenient mode: when neither the shard stores
		// nor Config.Fingerprints can prove a match the decision is
		// deferred to the strict fold-time check, which reruns once the
		// shard stores carry their fingerprints.
		if err := checkReplaceable(cfg.FoldInto, dirs, cfg.Fingerprints, false); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	var emitMu sync.Mutex
	emit := func(e Event) {
		if cfg.OnEvent == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		cfg.OnEvent(e)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		restarts atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			if err := babysit(runCtx, cfg, shard, dirs[shard], emit, &restarts); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The operator cancelled; report that, not the worker exits the
		// cancellation induced.
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := checkShardsComplete(dirs, cfg.Shards); err != nil {
		return nil, err
	}

	res := &Result{ShardDirs: dirs, Restarts: int(restarts.Load())}
	if cfg.FoldInto != "" {
		n, err := foldShards(cfg.FoldInto, dirs, cfg.Fingerprints, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		res.Folded = n
		emit(Event{Type: EventFold, Done: n})
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunShard runs one shard's worker lifecycle under cfg — the per-shard
// slice of Run, without the fan-out, layout checks, or fold: spawn the
// worker into storeDir, stream its events, and restart crashes with
// backoff under the budget. It exists for fleet agents, which hold a
// lease on exactly one shard at a time and fold nothing locally (the
// dispatcher folds after uploads); Config.Shards is the campaign's
// total shard count, not a process fan-out. Returns the restart count
// alongside the terminal error.
func RunShard(ctx context.Context, cfg Config, shard int, storeDir string) (int, error) {
	if cfg.Command == nil {
		return 0, errors.New("dispatch: Config.Command is required")
	}
	if shard < 0 || shard >= cfg.Shards {
		return 0, fmt.Errorf("dispatch: shard %d out of range 0..%d", shard, cfg.Shards-1)
	}
	var emitMu sync.Mutex
	emit := func(e Event) {
		if cfg.OnEvent == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		cfg.OnEvent(e)
	}
	var restarts atomic.Int64
	err := babysit(ctx, cfg, shard, storeDir, emit, &restarts)
	return int(restarts.Load()), err
}

// FoldStores folds completed per-shard stores into dst under the same
// replaceability discipline Run applies after supervision: dst is
// replaced only when provably a stale fold of this campaign (its
// campaign.json matches the shards', or one of the acceptable
// fingerprints), and the fold lands in a temporary sibling first so a
// crash never leaves a half-written dst. Exported for the fleetd
// dispatcher, which collects its shard stores over the network instead
// of supervising local processes but must fold identically.
func FoldStores(dst string, dirs []string, fps [][]byte, trc *tracing.Tracer) (int, error) {
	if err := checkShardsComplete(dirs, len(dirs)); err != nil {
		return 0, err
	}
	return foldShards(dst, dirs, fps, trc)
}

// checkLayout is the pre-flight partial-shard detection: every shard
// store already under dir must belong to this dispatch — same shard
// count, and sitting in the directory its recorded index names. A
// leftover from a dispatch with a different shard count (or a stray
// shard store dropped into dir) is refused before any worker starts,
// because resuming workers into mispartitioned stores would mix
// differently partitioned runs.
func checkLayout(dir string, expect []string, shards int) error {
	found, err := store.DiscoverShards(dir)
	if err != nil {
		return err
	}
	for _, d := range found {
		m, ok, err := store.ReadShardMeta(d)
		if err != nil {
			return err
		}
		if !ok {
			continue // raced away; the worker will re-stamp it
		}
		if m.Count != shards {
			return fmt.Errorf("dispatch: %s holds shard %d/%d of a previous layout, not 1 of %d; fold or remove it first",
				d, m.Index, m.Count, shards)
		}
		if d != expect[m.Index] {
			return fmt.Errorf("dispatch: %s records shard %d/%d but shard %d writes to %s; remove the stray store",
				d, m.Index, m.Count, m.Index, expect[m.Index])
		}
	}
	return nil
}

// checkShardsComplete is the post-run counterpart: with more than one
// shard, every worker that claimed success must have left a store
// stamped with its assignment. A "worker" that exited 0 without
// writing its shard store (a host binary that forgot the worker
// entrypoint, say) must not reach the fold as a silently empty shard.
func checkShardsComplete(dirs []string, shards int) error {
	if shards <= 1 {
		return nil
	}
	for i, d := range dirs {
		m, ok, err := store.ReadShardMeta(d)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("dispatch: shard %d/%d exited successfully but left no shard store at %s (is the worker binary a dispatch worker?)",
				i, shards, d)
		}
		if m.Index != i || m.Count != shards {
			return fmt.Errorf("dispatch: %s records shard %d/%d, want %d/%d", d, m.Index, m.Count, i, shards)
		}
	}
	return nil
}

// babysit owns one shard's lifecycle: spawn, stream, and restart with
// backoff until the worker succeeds, the budget runs out, or the run
// is cancelled.
func babysit(ctx context.Context, cfg Config, shard int, dir string, emit func(Event), restarts *atomic.Int64) error {
	budget := cfg.maxRestarts()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := runWorker(ctx, cfg, Worker{Shard: shard, Shards: cfg.Shards, Attempt: attempt, StoreDir: dir}, emit)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The exit was (or is indistinguishable from) the shutdown
			// we requested; don't burn restart budget on it.
			return ctx.Err()
		}
		if attempt >= budget {
			return fmt.Errorf("dispatch: shard %d/%d failed permanently after %d attempt(s): %w",
				shard, cfg.Shards, attempt+1, err)
		}
		delay := cfg.backoff(attempt)
		emit(Event{Type: EventRestart, Shard: shard, Attempt: attempt + 1, Delay: delay, Err: err})
		restarts.Add(1)
		tb := cfg.Tracer.Start("backoff", fmt.Sprintf("shard-%d", shard))
		tb.SetAttr("attempt", attempt+1)
		tb.SetAttr("delaySeconds", delay.Seconds())
		select {
		case <-time.After(delay):
			tb.Finish(nil)
		case <-ctx.Done():
			tb.Finish(ctx.Err())
			return ctx.Err()
		}
	}
}

// runWorker runs one worker attempt to completion: wire pipes, start,
// stream events, forward cancellation as a graceful terminate (then a
// kill after Grace), and return the exit error.
func runWorker(ctx context.Context, cfg Config, w Worker, emit func(Event)) error {
	cmd, err := cfg.Command(w)
	if err != nil {
		return fmt.Errorf("dispatch: shard %d command: %w", w.Shard, err)
	}
	if cmd.Stdout != nil || cmd.Stderr != nil {
		return fmt.Errorf("dispatch: shard %d command pre-wires stdout/stderr (the supervisor owns them)", w.Shard)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	if !cfg.KeepProcessGroup {
		isolate(cmd)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dispatch: shard %d: %w", w.Shard, err)
	}
	pid := cmd.Process.Pid
	tb := cfg.Tracer.Start("worker", fmt.Sprintf("shard-%d", w.Shard))
	tb.SetAttr("attempt", w.Attempt+1)
	tb.SetAttr("pid", pid)
	emit(Event{Type: EventStart, Shard: w.Shard, Attempt: w.Attempt, PID: pid})

	var scanWg sync.WaitGroup
	scanWg.Add(2)
	go func() {
		defer scanWg.Done()
		scanStdout(stdout, w, pid, emit)
	}()
	go func() {
		defer scanWg.Done()
		scanLines(stderr, w, pid, "stderr", emit)
	}()

	// Forward cancellation: terminate gracefully, then kill after the
	// grace period if the worker ignores it.
	waitDone := make(chan struct{})
	var killWg sync.WaitGroup
	killWg.Add(1)
	go func() {
		defer killWg.Done()
		select {
		case <-waitDone:
		case <-ctx.Done():
			terminate(cmd.Process, !cfg.KeepProcessGroup)
			select {
			case <-waitDone:
			case <-time.After(cfg.grace()):
				kill(cmd.Process, !cfg.KeepProcessGroup)
			}
		}
	}()

	scanWg.Wait()
	err = cmd.Wait()
	close(waitDone)
	killWg.Wait()
	tb.Finish(err)
	emit(Event{Type: EventExit, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Err: err})
	return err
}

// scanStdout splits a worker's stdout into protocol events and plain
// lines. Protocol lines are single JSON objects with a "type" field;
// anything else is forwarded verbatim.
func scanStdout(r io.Reader, w Worker, pid int, emit func(Event)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var msg struct {
			Type     string              `json:"type"`
			Done     int                 `json:"done"`
			Total    int                 `json:"total"`
			Snapshot *telemetry.Snapshot `json:"snapshot"`
			Traces   []tracing.Trace     `json:"traces"`
		}
		if len(line) > 0 && line[0] == '{' && json.Unmarshal([]byte(line), &msg) == nil {
			switch {
			case msg.Type == "progress":
				emit(Event{Type: EventProgress, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Done: msg.Done, Total: msg.Total})
				continue
			case msg.Type == "telemetry" && msg.Snapshot != nil:
				emit(Event{Type: EventTelemetry, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Telemetry: msg.Snapshot})
				continue
			case msg.Type == "traces" && msg.Traces != nil:
				emit(Event{Type: EventTraces, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Traces: msg.Traces})
				continue
			}
		}
		emit(Event{Type: EventLine, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Line: line, Stream: "stdout"})
	}
	drain(sc.Err(), r, w, pid, "stdout", emit)
}

// scanLines forwards every line of r as a Line event.
func scanLines(r io.Reader, w Worker, pid int, stream string, emit func(Event)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		emit(Event{Type: EventLine, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Line: sc.Text(), Stream: stream})
	}
	drain(sc.Err(), r, w, pid, stream, emit)
}

// drain keeps a worker's pipe flowing after a scan error (a single
// line past the Scanner's 1MB cap aborts it): abandoning the pipe
// would fill the OS buffer, block the worker's writes, and wedge
// cmd.Wait — and with it the whole dispatch — forever. The discarded
// remainder is surfaced as a line event rather than lost silently.
func drain(err error, r io.Reader, w Worker, pid int, stream string, emit func(Event)) {
	if err == nil {
		return
	}
	n, _ := io.Copy(io.Discard, r)
	emit(Event{
		Type: EventLine, Shard: w.Shard, Attempt: w.Attempt, PID: pid, Stream: stream,
		Line: fmt.Sprintf("[supervisor] %s scan aborted (%v); %d trailing bytes discarded", stream, err, n),
	})
}

// foldShards folds the shard stores into dst, replacing a previous
// fold of the same campaign. The fold lands in a temporary sibling
// first, so a crash mid-fold never leaves a half-written dst; dst is
// replaced only after the fresh fold fully succeeded, and only when
// what it holds is provably a stale fold of this campaign (same
// campaign.json as the shards carry).
func foldShards(dst string, dirs []string, fps [][]byte, trc *tracing.Tracer) (int, error) {
	if err := checkReplaceable(dst, dirs, fps, true); err != nil {
		return 0, err
	}
	tmp := dst + ".folding"
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("dispatch: %w", err)
	}
	n, err := store.Fold(tmp, store.Options{Tracer: trc}, dirs...)
	if err != nil {
		os.RemoveAll(tmp)
		return 0, err
	}
	if err := os.RemoveAll(dst); err != nil {
		return 0, fmt.Errorf("dispatch: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		return 0, fmt.Errorf("dispatch: %w", err)
	}
	return n, nil
}

// checkReplaceable decides whether dst may be replaced by a fresh
// fold: yes when it is absent or empty, and yes when its campaign.json
// equals the shards' (it is a previous dispatch's fold output,
// reproducible from the shard stores). Any other store is someone
// else's data and is refused. When no shard store carries a
// fingerprint yet (a fresh dispatch), the caller-supplied acceptable
// fingerprints decide instead; with neither available, strict refuses
// (a fold target that cannot be proven ours must not be deleted) while
// lenient defers to the strict fold-time recheck.
func checkReplaceable(dst string, dirs []string, fps [][]byte, strict bool) error {
	entries, err := os.ReadDir(dst)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	if len(entries) == 0 {
		return nil
	}
	dstFP, err := readFingerprint(dst)
	if err != nil {
		return err
	}
	if dstFP == nil {
		return fmt.Errorf("dispatch: fold destination %s already exists and carries no campaign.json; not replacing it", dst)
	}
	for _, d := range dirs {
		fp, err := readFingerprint(d)
		if err != nil {
			return err
		}
		if fp == nil {
			continue
		}
		if !reflect.DeepEqual(dstFP, fp) {
			return fmt.Errorf("dispatch: fold destination %s holds a different campaign than shard store %s; not replacing it", dst, d)
		}
		return nil
	}
	for _, raw := range fps {
		var v any
		if json.Unmarshal(raw, &v) == nil && reflect.DeepEqual(dstFP, v) {
			return nil
		}
	}
	if len(fps) > 0 {
		return fmt.Errorf("dispatch: fold destination %s holds a different campaign than the one being dispatched; not replacing it", dst)
	}
	if !strict {
		return nil
	}
	return fmt.Errorf("dispatch: fold destination %s exists but the shard stores carry no campaign.json to match it against; not replacing it", dst)
}

// readFingerprint reads and decodes dir's campaign.json (nil when the
// store carries none).
func readFingerprint(dir string) (any, error) {
	b, err := os.ReadFile(filepath.Join(dir, store.CampaignMetaFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", filepath.Join(dir, store.CampaignMetaFile), err)
	}
	return v, nil
}
