module veritas

go 1.22
