// Quickstart: the full Veritas pipeline in one page.
//
// We stream a video over a synthetic network with the MPC algorithm
// (the "deployed system"), keep only the logs a real deployment would
// have, abduce the latent ground-truth bandwidth, and ask a what-if
// question: how would the session have gone with BBA instead? Because
// this is a simulation we also replay the oracle (the true bandwidth)
// to show how close Veritas gets.
//
// Finally we ask the same question at fleet scale: one Campaign runs
// the whole pipeline over a scenario-diverse corpus.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"veritas"
)

func main() {
	// 1. The world: a 3-8 Mbps FCC-like bandwidth trace. In a real
	// deployment this is the unobserved ground truth.
	gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The deployed system: MPC with a 5 s buffer. The log records
	// chunk sizes, download times and TCP state — nothing else.
	sess, err := veritas.RunSession(veritas.SessionConfig{
		Trace: gt,
		ABR:   veritas.NewMPC(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed (MPC):    SSIM %.4f  rebuf %5.2f%%  bitrate %.2f Mbps\n",
		sess.Metrics.AvgSSIM, sess.Metrics.RebufRatio*100, sess.Metrics.AvgBitrateMbps)

	// 3. Abduction: invert the log into posterior samples of the latent
	// bandwidth.
	abd, err := veritas.Abduct(sess.Log, veritas.AbductionConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The what-if question: what if BBA had been deployed instead?
	whatIf := veritas.WhatIf{NewABR: veritas.NewBBA}
	outcome, err := veritas.Counterfactual(abd, whatIf)
	if err != nil {
		log.Fatal(err)
	}
	ssimLo, ssimHi := outcome.SSIMRange()
	rebLo, rebHi := outcome.RebufRange()

	// 5. The oracle: only possible in simulation, for reference.
	truth, err := veritas.Oracle(gt, whatIf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("what-if (BBA):\n")
	fmt.Printf("  oracle:          SSIM %.4f  rebuf %5.2f%%\n", truth.AvgSSIM, truth.RebufRatio*100)
	fmt.Printf("  baseline:        SSIM %.4f  rebuf %5.2f%%\n",
		outcome.Baseline.AvgSSIM, outcome.Baseline.RebufRatio*100)
	fmt.Printf("  veritas range:   SSIM %.4f-%.4f  rebuf %5.2f%%-%.2f%%\n",
		ssimLo, ssimHi, rebLo*100, rebHi*100)

	// 6. The same question at fleet scale: a Campaign runs the whole
	// pipeline (simulate, abduct, replay the matrix) over a corpus of
	// sessions and aggregates the answers.
	c, err := veritas.NewCampaign(
		veritas.WithScenarios("fcc"),
		veritas.WithSessions(4),
		veritas.WithChunks(60),
		veritas.WithSamples(2),
		veritas.WithSeed(42),
		veritas.WithMatrix([]string{"bba"}, []float64{5}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet (4 FCC sessions, arm %s): %d sessions aggregated\n",
		rep.Arms[0].Arm, rep.Sessions)
}
