// Dispatchedfleet: the one-command replacement for the manual shard
// runbook. Where examples/shardedfleet plays all three "machines" by
// hand — one campaign per shard, then FoldShards — this example hands
// the whole lifecycle to the dispatch supervisor: Campaign.Dispatch
// spawns one worker process per shard (re-execs of this very binary;
// note the DispatchWorkerMain call at the top of main), streams their
// progress, restarts any shard that crashes with resume into its same
// store, folds the shard stores into the campaign store, and leaves
// the campaign reporting from the folded corpus — byte-identical to a
// single-process run, which the example verifies.
//
//	go run ./examples/dispatchedfleet
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"veritas"
)

const shards = 2

// campaignOptions is the shared campaign definition; the dispatch
// workers rebuild exactly these options from the spec the supervisor
// hands them, so every process computes the same campaign.
func campaignOptions() []veritas.CampaignOption {
	return []veritas.CampaignOption{
		veritas.WithScenarios("fcc", "lte"),
		veritas.WithSessions(2),
		veritas.WithChunks(30),
		veritas.WithSamples(2),
		veritas.WithSeed(7),
		veritas.WithMatrix([]string{"bba"}, []float64{5}),
	}
}

func main() {
	// Dispatch workers are re-execs of this binary: when the supervisor
	// spawned us, run the assigned shard and exit; otherwise fall
	// through and BE the supervisor.
	veritas.DispatchWorkerMain()

	work, err := os.MkdirTemp("", "dispatchedfleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	ctx := context.Background()

	// The single-process reference run.
	ref, err := veritas.NewCampaign(campaignOptions()...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.Run(ctx); err != nil {
		log.Fatal(err)
	}
	refReport, err := ref.Report()
	if err != nil {
		log.Fatal(err)
	}
	refJSON, err := json.Marshal(refReport)
	if err != nil {
		log.Fatal(err)
	}

	// The dispatched run: one supervised worker process per shard,
	// folded into the campaign store. The event callback is the
	// supervisor's merged progress stream.
	folded := filepath.Join(work, "campaign.store")
	c, err := veritas.NewCampaign(append(campaignOptions(),
		veritas.WithStore(folded),
		veritas.WithDispatchEvents(func(e veritas.DispatchEvent) {
			switch e.Type {
			case veritas.DispatchStart:
				fmt.Printf("shard %d: worker pid %d (attempt %d)\n", e.Shard, e.PID, e.Attempt+1)
			case veritas.DispatchProgress:
				fmt.Printf("shard %d: %d/%d sessions\n", e.Shard, e.Done, e.Total)
			case veritas.DispatchRestart:
				fmt.Printf("shard %d: crashed (%v); restarting in %v\n", e.Shard, e.Err, e.Delay)
			case veritas.DispatchFold:
				fmt.Printf("folded %d sessions\n", e.Done)
			}
		}),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	res, err := c.Dispatch(ctx, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatched %d shards: %d sessions folded, %d restart(s), %v\n",
		shards, res.Folded, res.Restarts, res.Elapsed.Round(time.Millisecond))

	// The dispatching campaign reports from the folded store — exactly
	// what the single-process run computed.
	dispReport, err := c.Report()
	if err != nil {
		log.Fatal(err)
	}
	dispJSON, err := json.Marshal(dispReport)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(refJSON, dispJSON) {
		log.Fatal("dispatched report differs from the single-process report")
	}
	fmt.Printf("dispatched report is byte-identical to the single-process report (%d bytes)\n", len(dispJSON))

	// The supervisor's telemetry snapshot carries the dispatch-side
	// view of the run it just babysat: per-shard progress gauges, the
	// restart counter, worker exit outcomes. (A live fleet is usually
	// watched over HTTP instead — WithDispatchStatus(addr) serves
	// /v1/status and /metrics while the dispatch runs.)
	snap := c.Telemetry()
	fmt.Printf("telemetry: restarts=%d", snap.Counters["veritas_dispatch_restarts_total"])
	for i := 0; i < shards; i++ {
		fmt.Printf(" shard%d=%.0f/%.0f", i,
			snap.Gauges[fmt.Sprintf("veritas_dispatch_shard_sessions_done{shard=%q}", fmt.Sprint(i))],
			snap.Gauges[fmt.Sprintf("veritas_dispatch_shard_sessions{shard=%q}", fmt.Sprint(i))])
	}
	fmt.Println()
}
