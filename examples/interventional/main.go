// Interventional prediction: the paper's §4.4 / Figure 12 scenario.
//
// A live ABR needs download-time predictions for every candidate next
// chunk size — including sizes the deployed policy would never have
// picked. We compare Veritas's interventional predictor against the
// true forked futures on a session driven by random bitrate choices.
//
// The per-prefix abductions batch on one Campaign: each corpus spec
// carries a prefix of the session log (the predictor may not peek at
// the future) and one Predict query for the chunk that actually
// followed.
//
//	go run ./examples/interventional
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"veritas"
)

func main() {
	gt, err := veritas.GenerateTrace(veritas.TraceConfig{
		MinMbps: 0.5, MaxMbps: 10, Interval: 5, Horizon: 900,
		StepMbps: 0.4, JumpProb: 0.02, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A session with random quality choices: off-policy chunk-size
	// sequences, exactly where associational predictors go wrong.
	sess, err := veritas.RunSession(veritas.SessionConfig{
		Trace: gt,
		ABR:   veritas.NewRandomABR(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	recs := sess.Log.Records
	var specs []veritas.FleetSpec
	var queried []int
	for n := 40; n < len(recs); n += 25 {
		rec := recs[n]
		specs = append(specs, veritas.FleetSpec{
			ID:  fmt.Sprintf("prefix-%03d", n),
			Log: sess.Log.Prefix(n),
			Abduct: veritas.AbductionConfig{
				NumSamples: 1, Seed: int64(n),
			},
			Predict: []veritas.FleetPredictQuery{
				{StartSecs: rec.Start, TCP: rec.TCP, SizeBytes: rec.SizeBytes},
			},
		})
		queried = append(queried, n)
	}

	c, err := veritas.NewCampaign(veritas.WithCorpus(specs...))
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chunk  size(KB)  true DL(s)  veritas DL(s)  abs err")
	var absErrs []float64
	for i, s := range res.Sessions {
		n := queried[i]
		rec := recs[n]
		pred := s.Predictions[0]
		actual := rec.End - rec.Start
		absErrs = append(absErrs, math.Abs(pred-actual))
		fmt.Printf("%5d  %8.0f  %10.2f  %13.2f  %7.2f\n",
			n, rec.SizeBytes/1e3, actual, pred, math.Abs(pred-actual))
	}
	var mae float64
	for _, e := range absErrs {
		mae += e
	}
	mae /= float64(len(absErrs))
	fmt.Printf("\nmean absolute error: %.2f s over %d predictions\n", mae, len(absErrs))
}
