// ABR switch: the paper's Figure 8/9 scenario over a trace set.
//
// A publisher has been running MPC and wants to know, from logs alone,
// what switching to BBA (or BOLA) would do to SSIM and rebuffering. We
// run the deployed system over many traces, answer the counterfactual
// with Baseline and Veritas, and compare both against the oracle.
//
//	go run ./examples/abrswitch
package main

import (
	"fmt"
	"log"
	"sort"

	"veritas"
)

const numTraces = 10

func main() {
	for _, alt := range []struct {
		name   string
		newABR func() veritas.ABR
	}{
		{"BBA", veritas.NewBBA},
		{"BOLA", veritas.NewBOLA},
	} {
		fmt.Printf("=== what if MPC were replaced by %s? (%d traces) ===\n", alt.name, numTraces)
		var truthReb, baseReb, vLoReb, vHiReb []float64
		for i := 0; i < numTraces; i++ {
			gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(int64(100 + i)))
			if err != nil {
				log.Fatal(err)
			}
			sess, err := veritas.RunSession(veritas.SessionConfig{
				Trace: gt, ABR: veritas.NewMPC(), MaxChunks: 150,
			})
			if err != nil {
				log.Fatal(err)
			}
			abd, err := veritas.Abduct(sess.Log, veritas.AbductionConfig{Seed: int64(i + 1)})
			if err != nil {
				log.Fatal(err)
			}
			w := veritas.WhatIf{NewABR: alt.newABR}
			outcome, err := veritas.Counterfactual(abd, w)
			if err != nil {
				log.Fatal(err)
			}
			truth, err := veritas.Oracle(gt, w)
			if err != nil {
				log.Fatal(err)
			}
			lo, hi := outcome.RebufRange()
			truthReb = append(truthReb, truth.RebufRatio*100)
			baseReb = append(baseReb, outcome.Baseline.RebufRatio*100)
			vLoReb = append(vLoReb, lo*100)
			vHiReb = append(vHiReb, hi*100)
		}
		fmt.Printf("median rebuffering %%: oracle %.2f | baseline %.2f | veritas %.2f-%.2f\n\n",
			median(truthReb), median(baseReb), median(vLoReb), median(vHiReb))
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
