// ABR switch: the paper's Figure 8/9 scenario over a trace set.
//
// A publisher has been running MPC and wants to know, from logs alone,
// what switching to BBA (or BOLA) would do to SSIM and rebuffering.
// One Campaign carries the whole study: a corpus of FCC-like sessions
// streamed by the deployed MPC, and one what-if arm per candidate
// algorithm, answered with Baseline and Veritas and compared against
// the oracle.
//
//	go run ./examples/abrswitch
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"veritas"
)

const numTraces = 10

func main() {
	// The corpus: ten FCC-like ground-truth traces, each streamed by
	// the deployed system (MPC, 5 s buffer — the campaign defaults).
	specs := make([]veritas.FleetSpec, numTraces)
	for i := range specs {
		gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(int64(100 + i)))
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = veritas.FleetSpec{
			ID:        fmt.Sprintf("fcc-%03d", i),
			Trace:     gt,
			MaxChunks: 150,
			Abduct:    veritas.AbductionConfig{Seed: int64(i + 1)},
		}
	}

	// The matrix: one arm per candidate replacement.
	var arms []veritas.FleetArm
	for _, alt := range []struct {
		name   string
		newABR func() veritas.ABR
	}{
		{"BBA", veritas.NewBBA},
		{"BOLA", veritas.NewBOLA},
	} {
		arm, err := veritas.NewArm(alt.name, veritas.WhatIf{NewABR: alt.newABR})
		if err != nil {
			log.Fatal(err)
		}
		arms = append(arms, arm)
	}

	c, err := veritas.NewCampaign(veritas.WithCorpus(specs...), veritas.WithArms(arms...))
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	for ai, arm := range arms {
		fmt.Printf("=== what if MPC were replaced by %s? (%d traces) ===\n", arm.Name, numTraces)
		var truthReb, baseReb, vLoReb, vHiReb []float64
		for _, s := range res.Sessions {
			oc := s.Arms[ai]
			out := veritas.Outcome{Baseline: oc.Baseline, Samples: oc.Samples}
			lo, hi := out.RebufRange()
			truthReb = append(truthReb, oc.Truth.RebufRatio*100)
			baseReb = append(baseReb, oc.Baseline.RebufRatio*100)
			vLoReb = append(vLoReb, lo*100)
			vHiReb = append(vHiReb, hi*100)
		}
		fmt.Printf("median rebuffering %%: oracle %.2f | baseline %.2f | veritas %.2f-%.2f\n\n",
			median(truthReb), median(baseReb), median(vLoReb), median(vHiReb))
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
