// Shardedfleet: a campaign dispatched across shards, folded back into
// one corpus, and proven byte-identical to the single-process run.
//
// A sharded campaign splits the session grid by corpus index: shard i
// of n runs only the sessions with index ≡ i (mod n) into its own
// store. Because the partition preserves corpus indices — and every
// per-session seed derives from the index — the shards compute exactly
// the rows the unsharded campaign would, so folding the shard stores
// yields a corpus whose aggregate report matches the single-process
// report byte for byte.
//
// This example runs the three "machines" as sequential processes in
// one binary; in production each shard is its own `fleet -shard i/n
// -store dir` invocation on its own machine (see EXPERIMENTS.md).
//
//	go run ./examples/shardedfleet
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"veritas"
)

const shards = 3

// campaignOptions is the shared campaign definition: every shard (and
// the single-process reference) must be built from the same options,
// or the stores would refuse to fold.
func campaignOptions() []veritas.CampaignOption {
	return []veritas.CampaignOption{
		veritas.WithScenarios("fcc", "lte"),
		veritas.WithSessions(2),
		veritas.WithChunks(30),
		veritas.WithSamples(2),
		veritas.WithSeed(7),
		veritas.WithMatrix([]string{"bba"}, []float64{5}),
	}
}

func main() {
	work, err := os.MkdirTemp("", "shardedfleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	ctx := context.Background()

	// The single-process reference run (no store needed: the in-RAM
	// aggregate is what a store-backed report reproduces).
	ref, err := veritas.NewCampaign(campaignOptions()...)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ref.Run(ctx); err != nil {
		log.Fatal(err)
	}
	refReport, err := ref.Report()
	if err != nil {
		log.Fatal(err)
	}
	refJSON, err := json.Marshal(refReport)
	if err != nil {
		log.Fatal(err)
	}

	// The "fleet": one campaign per shard, each appending to its own
	// store directory.
	shardDirs := make([]string, shards)
	for i := 0; i < shards; i++ {
		shardDirs[i] = filepath.Join(work, fmt.Sprintf("shard%d.store", i))
		c, err := veritas.NewCampaign(append(campaignOptions(),
			veritas.WithShard(i, shards),
			veritas.WithStore(shardDirs[i]),
		)...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shard %d/%d ran %d sessions into %s\n", i, shards, res.Executed, shardDirs[i])
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// Fold the shard stores into one corpus. FoldShards orders sources
	// by recorded shard index, so any listing order works.
	folded := filepath.Join(work, "campaign.store")
	n, err := veritas.FoldShards(folded, shardDirs[2], shardDirs[0], shardDirs[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded %d sessions into %s\n", n, folded)

	// The folded corpus reports exactly what the unsharded run did.
	fc, err := veritas.NewCampaign(veritas.WithStore(folded), veritas.WithReadOnlyStore())
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	foldedReport, err := fc.Report()
	if err != nil {
		log.Fatal(err)
	}
	foldedJSON, err := json.Marshal(foldedReport)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(refJSON, foldedJSON) {
		log.Fatal("folded report differs from the single-process report")
	}
	fmt.Printf("folded report is byte-identical to the single-process report (%d bytes)\n", len(foldedJSON))
}
