// Quality ladder: the paper's Figure 11 scenario and its headline
// result.
//
// A publisher considers enabling higher resolutions (dropping the low
// rungs, adding rungs above the old maximum). The Baseline estimator —
// observed throughput taken at face value — predicts heavy rebuffering,
// because the adaptive client's observed throughput systematically
// under-reports what the network can do. Veritas, by inverting the
// observations through its TCP-aware model, predicts (correctly) that
// the network can carry the higher ladder with almost no rebuffering.
//
//	go run ./examples/qualityladder
package main

import (
	"fmt"
	"log"
	"sort"

	"veritas"
)

const numTraces = 8

func main() {
	hv := veritas.HigherQualityVideo(1)
	w := veritas.WhatIf{NewABR: veritas.NewMPC, Video: hv}

	var truthReb, baseReb, vHiReb []float64
	for i := 0; i < numTraces; i++ {
		gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(int64(200 + i)))
		if err != nil {
			log.Fatal(err)
		}
		sess, err := veritas.RunSession(veritas.SessionConfig{
			Trace: gt, ABR: veritas.NewMPC(), MaxChunks: 150,
		})
		if err != nil {
			log.Fatal(err)
		}
		abd, err := veritas.Abduct(sess.Log, veritas.AbductionConfig{Seed: int64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
		outcome, err := veritas.Counterfactual(abd, w)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := veritas.Oracle(gt, w)
		if err != nil {
			log.Fatal(err)
		}
		_, hi := outcome.RebufRange()
		truthReb = append(truthReb, truth.RebufRatio*100)
		baseReb = append(baseReb, outcome.Baseline.RebufRatio*100)
		vHiReb = append(vHiReb, hi*100)
		fmt.Printf("trace %d: rebuf%% oracle %.2f | baseline %.2f | veritas(high) %.2f\n",
			i, truth.RebufRatio*100, outcome.Baseline.RebufRatio*100, hi*100)
	}
	fmt.Printf("\nmedian rebuffering with the higher ladder:\n")
	fmt.Printf("  oracle          %.2f%%   (the network can carry it)\n", median(truthReb))
	fmt.Printf("  veritas (high)  %.2f%%   (Veritas agrees)\n", median(vHiReb))
	fmt.Printf("  baseline        %.2f%%   (would wrongly veto the launch)\n", median(baseReb))
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
