// Quality ladder: the paper's Figure 11 scenario and its headline
// result.
//
// A publisher considers enabling higher resolutions (dropping the low
// rungs, adding rungs above the old maximum). The Baseline estimator —
// observed throughput taken at face value — predicts heavy rebuffering,
// because the adaptive client's observed throughput systematically
// under-reports what the network can do. Veritas, by inverting the
// observations through its TCP-aware model, predicts (correctly) that
// the network can carry the higher ladder with almost no rebuffering.
//
// The whole study is one Campaign: eight FCC-like deployed sessions in
// the corpus, one what-if arm carrying the higher ladder.
//
//	go run ./examples/qualityladder
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"veritas"
)

const numTraces = 8

func main() {
	hv := veritas.HigherQualityVideo(1)
	arm, err := veritas.NewArm("higher-ladder", veritas.WhatIf{NewABR: veritas.NewMPC, Video: hv})
	if err != nil {
		log.Fatal(err)
	}

	specs := make([]veritas.FleetSpec, numTraces)
	for i := range specs {
		gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(int64(200 + i)))
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = veritas.FleetSpec{
			ID:        fmt.Sprintf("fcc-%03d", i),
			Trace:     gt,
			MaxChunks: 150,
			Abduct:    veritas.AbductionConfig{Seed: int64(i + 1)},
		}
	}

	c, err := veritas.NewCampaign(veritas.WithCorpus(specs...), veritas.WithArms(arm))
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	var truthReb, baseReb, vHiReb []float64
	for i, s := range res.Sessions {
		oc := s.Arms[0]
		out := veritas.Outcome{Baseline: oc.Baseline, Samples: oc.Samples}
		_, hi := out.RebufRange()
		truthReb = append(truthReb, oc.Truth.RebufRatio*100)
		baseReb = append(baseReb, oc.Baseline.RebufRatio*100)
		vHiReb = append(vHiReb, hi*100)
		fmt.Printf("trace %d: rebuf%% oracle %.2f | baseline %.2f | veritas(high) %.2f\n",
			i, oc.Truth.RebufRatio*100, oc.Baseline.RebufRatio*100, hi*100)
	}
	fmt.Printf("\nmedian rebuffering with the higher ladder:\n")
	fmt.Printf("  oracle          %.2f%%   (the network can carry it)\n", median(truthReb))
	fmt.Printf("  veritas (high)  %.2f%%   (Veritas agrees)\n", median(vHiReb))
	fmt.Printf("  baseline        %.2f%%   (would wrongly veto the launch)\n", median(baseReb))
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
