// Buffer upgrade: the paper's Figure 10 scenario.
//
// The deployed player buffers only 5 seconds of video (low latency).
// Product wants to know what a 10- or 30-second buffer would buy. One
// Campaign answers it: a single deployed session in the corpus and an
// MPC × {10 s, 30 s} what-if matrix, showing how the Baseline's
// conservative bandwidth estimate distorts the answer.
//
//	go run ./examples/bufferupgrade
package main

import (
	"context"
	"fmt"
	"log"

	"veritas"
)

func main() {
	gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	c, err := veritas.NewCampaign(
		veritas.WithCorpus(veritas.FleetSpec{
			ID:    "deployed",
			Trace: gt,
			// Deployed setting: MPC with a 5 s buffer (the defaults).
		}),
		veritas.WithMatrix([]string{"mpc"}, []float64{10, 30}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	s := res.Sessions[0]
	fmt.Printf("deployed (5 s buffer):  SSIM %.4f  bitrate %.2f Mbps\n",
		s.SettingA.AvgSSIM, s.SettingA.AvgBitrateMbps)

	for _, oc := range s.Arms {
		out := veritas.Outcome{Baseline: oc.Baseline, Samples: oc.Samples}
		ssimLo, ssimHi := out.SSIMRange()
		brLo, brHi := out.BitrateRange()
		fmt.Printf("\nwhat-if arm %s:\n", oc.Name)
		fmt.Printf("  oracle:   SSIM %.4f  bitrate %.2f Mbps\n", oc.Truth.AvgSSIM, oc.Truth.AvgBitrateMbps)
		fmt.Printf("  baseline: SSIM %.4f  bitrate %.2f Mbps\n",
			oc.Baseline.AvgSSIM, oc.Baseline.AvgBitrateMbps)
		fmt.Printf("  veritas:  SSIM %.4f-%.4f  bitrate %.2f-%.2f Mbps\n",
			ssimLo, ssimHi, brLo, brHi)
	}
}
