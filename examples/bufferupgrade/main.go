// Buffer upgrade: the paper's Figure 10 scenario.
//
// The deployed player buffers only 5 seconds of video (low latency).
// Product wants to know what a 30-second buffer would buy. We answer
// from logs with Veritas and show how the Baseline's conservative
// bandwidth estimate distorts the answer.
//
//	go run ./examples/bufferupgrade
package main

import (
	"fmt"
	"log"

	"veritas"
)

func main() {
	gt, err := veritas.GenerateTrace(veritas.DefaultTraceConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := veritas.RunSession(veritas.SessionConfig{
		Trace: gt,
		ABR:   veritas.NewMPC(),
		// Deployed setting: 5 s buffer.
		BufferCap: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed (5 s buffer):  SSIM %.4f  bitrate %.2f Mbps\n",
		sess.Metrics.AvgSSIM, sess.Metrics.AvgBitrateMbps)

	abd, err := veritas.Abduct(sess.Log, veritas.AbductionConfig{})
	if err != nil {
		log.Fatal(err)
	}

	for _, buf := range []float64{10, 30} {
		w := veritas.WhatIf{NewABR: veritas.NewMPC, BufferCap: buf}
		outcome, err := veritas.Counterfactual(abd, w)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := veritas.Oracle(gt, w)
		if err != nil {
			log.Fatal(err)
		}
		ssimLo, ssimHi := outcome.SSIMRange()
		brLo, brHi := outcome.BitrateRange()
		fmt.Printf("\nwhat-if buffer = %2.0f s:\n", buf)
		fmt.Printf("  oracle:   SSIM %.4f  bitrate %.2f Mbps\n", truth.AvgSSIM, truth.AvgBitrateMbps)
		fmt.Printf("  baseline: SSIM %.4f  bitrate %.2f Mbps\n",
			outcome.Baseline.AvgSSIM, outcome.Baseline.AvgBitrateMbps)
		fmt.Printf("  veritas:  SSIM %.4f-%.4f  bitrate %.2f-%.2f Mbps\n",
			ssimLo, ssimHi, brLo, brHi)
	}
}
