package veritas

// The campaign layer: one object tying a batch causal-query campaign's
// corpus, what-if matrix, execution, persistence, resume, and serving
// together. A Campaign is built once from functional options and then
// drives the fleet engine (internal/engine) and the corpus store
// (internal/store) behind a single coherent surface:
//
//	c, _ := veritas.NewCampaign(
//		veritas.WithScenarios("lte", "wifi"),
//		veritas.WithSessions(25),
//		veritas.WithMatrix([]string{"bba", "bola"}, []float64{5, 30}),
//		veritas.WithStore("campaign.store"),
//	)
//	res, _ := c.Run(ctx)      // or c.Resume(ctx) after a crash
//	rep, _ := c.Report()      // aggregate report (store-backed if stored)
//	_ = c.Serve(ctx, ":8077") // query API over the persisted corpus
//
// The older free functions (RunFleet, BuildCorpus, FleetMatrix, ...)
// remain as deprecated shims in compat.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"veritas/internal/engine"
	"veritas/internal/mathx"
	"veritas/internal/serve"
	"veritas/internal/store"
	"veritas/internal/telemetry"
	"veritas/internal/tracing"
)

// TelemetrySnapshot is a point-in-time capture of a campaign's metrics
// registry: plain data that serializes to JSON, merges additively, and
// renders as Prometheus text (WritePrometheus). See Campaign.Telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// Tracing data types re-exported for campaign callers.
type (
	// CampaignTrace is one tail-sampled session (or store/dispatch
	// operation) trace: wall-clock anchor, duration, error, attributes,
	// and nested spans. See Campaign.Trace.
	CampaignTrace = tracing.Trace
	// CampaignSpan is one timed stage inside a CampaignTrace.
	CampaignSpan = tracing.Span
)

// Fleet data types re-exported for campaign callers.
type (
	// FleetSpec is one corpus session (a GTBW trace to stream, or a
	// pre-recorded log to invert).
	FleetSpec = engine.SessionSpec
	// FleetArm is one what-if setting of the query matrix.
	FleetArm = engine.Arm
	// FleetResult is a completed fleet run: per-session results in
	// corpus order plus the streaming aggregator.
	FleetResult = engine.Result
	// FleetSessionResult is one session's outcomes.
	FleetSessionResult = engine.SessionResult
	// FleetCacheStats counts the engine's emission-memoization cache.
	FleetCacheStats = engine.CacheStats
	// FleetRow is the compact per-session record the store persists,
	// the aggregator reduces over, and Campaign.Results streams.
	FleetRow = engine.SessionRow
	// FleetArmOutcome is one session × arm cell of the what-if matrix.
	FleetArmOutcome = engine.ArmOutcome
	// FleetPredictQuery is one interventional download-time query (the
	// paper's §4.4) answered from a spec's abduction.
	FleetPredictQuery = engine.PredictQuery
	// FleetSink consumes completed session results in completion order.
	FleetSink = engine.Sink
	// FleetReport is the serializable aggregate report (what the
	// serving layer returns as JSON).
	FleetReport = engine.Report
)

// Scenarios returns the corpus scenario names WithScenarios accepts.
func Scenarios() []string { return engine.Scenarios() }

// ABRs returns the algorithm names WithMatrix accepts.
func ABRs() []string { return engine.ABRs() }

// ShardSessions returns how many of total corpus sessions shard index
// of count executes under WithShard's partition. It shares the
// engine's partition predicate, so a reported shard size always
// matches what a sharded campaign actually runs.
func ShardSessions(total, index, count int) int { return engine.ShardSessions(total, index, count) }

// NewArm builds a what-if arm from a WhatIf, defaulting video, network
// and buffer the same way Counterfactual does. Use it with WithArms to
// query settings outside the ABR × buffer matrix.
func NewArm(name string, w WhatIf) (FleetArm, error) {
	setting, err := w.setting()
	if err != nil {
		return FleetArm{}, err
	}
	return FleetArm{Name: name, Setting: setting}, nil
}

// campaignOptions is the resolved option set behind NewCampaign.
type campaignOptions struct {
	// Corpus shape: either the scenario mix...
	scenarios      []string
	sessionsPer    int
	deployedBuffer float64
	newDeployedABR func() ABR
	// ...or a caller-supplied corpus.
	corpus []FleetSpec

	chunks int // shapes both corpus and matrix video

	// Query matrix: either ABR × buffer, or explicit arms.
	abrs    []string
	buffers []float64
	arms    []FleetArm
	armsSet bool

	// Execution.
	workers        int
	samples        int
	seed           int64
	shardIndex     int
	shardCount     int // 0 = unsharded
	disableCache   bool
	keepAbductions bool
	onResult       func(FleetSessionResult)
	onProgress     func(done, total int)
	sinks          []FleetSink

	// Persistence and serving.
	storeDir      string
	readOnly      bool
	watch         bool
	watchInterval time.Duration
	segmentBytes  int64
	readCache     int
	resume        bool

	// Multi-process dispatch (see Campaign.Dispatch).
	dispatchBinary      string
	dispatchDir         string
	dispatchRestarts    int
	dispatchRestartsSet bool
	dispatchBackoff     time.Duration
	dispatchEvents      func(DispatchEvent)
	dispatchStatus      string

	// Networked fleet dispatch (see Campaign.ServeFleet).
	fleetAddr     string
	fleetTTL      time.Duration
	fleetMaxLease time.Duration
	fleetReady    func(addr string)

	// Observability.
	noTelemetry bool
	noTracing   bool
	traceKeep   int // 0 = tracing.DefaultKeep
}

// CampaignOption configures a Campaign; see the With* constructors.
type CampaignOption func(*campaignOptions) error

// WithScenarios restricts the synthetic corpus to the named bandwidth
// regimes (see Scenarios). The default is all of them.
func WithScenarios(names ...string) CampaignOption {
	return func(o *campaignOptions) error {
		if len(names) == 0 {
			return errors.New("veritas: WithScenarios needs at least one scenario (omit it for all)")
		}
		known := make(map[string]bool)
		for _, s := range engine.Scenarios() {
			known[s] = true
		}
		seen := make(map[string]bool)
		for _, n := range names {
			if !known[n] {
				return fmt.Errorf("veritas: unknown scenario %q (have %v)", n, engine.Scenarios())
			}
			if seen[n] {
				// Duplicates would produce sessions with colliding IDs,
				// which a store silently collapses (last write wins).
				return fmt.Errorf("veritas: scenario %q listed twice", n)
			}
			seen[n] = true
		}
		o.scenarios = names
		return nil
	}
}

// WithSessions sets the number of sessions per scenario (default 8).
func WithSessions(perScenario int) CampaignOption {
	return func(o *campaignOptions) error {
		if perScenario <= 0 {
			return fmt.Errorf("veritas: sessions per scenario %d must be positive", perScenario)
		}
		o.sessionsPer = perScenario
		return nil
	}
}

// WithChunks truncates every session's video to n chunks (0 means the
// full 10-minute clip). It shapes the corpus and the matrix arms alike.
func WithChunks(n int) CampaignOption {
	return func(o *campaignOptions) error {
		if n < 0 {
			return fmt.Errorf("veritas: chunks %d is negative (0 means the full clip)", n)
		}
		o.chunks = n
		return nil
	}
}

// WithDeployedABR sets the deployed (Setting A) algorithm factory for
// the synthetic corpus (default RobustMPC).
func WithDeployedABR(newABR func() ABR) CampaignOption {
	return func(o *campaignOptions) error {
		if newABR == nil {
			return errors.New("veritas: WithDeployedABR(nil)")
		}
		o.newDeployedABR = newABR
		return nil
	}
}

// WithDeployedBuffer sets the deployed (Setting A) buffer size in
// seconds (default 5, the paper's low-latency setting).
func WithDeployedBuffer(secs float64) CampaignOption {
	return func(o *campaignOptions) error {
		if secs <= 0 {
			return fmt.Errorf("veritas: deployed buffer %g must be positive seconds", secs)
		}
		o.deployedBuffer = secs
		return nil
	}
}

// WithCorpus replaces the synthetic scenario corpus with caller-built
// session specs. Incompatible with the scenario-mix options
// (WithScenarios, WithSessions, WithDeployedABR, WithDeployedBuffer).
func WithCorpus(specs ...FleetSpec) CampaignOption {
	return func(o *campaignOptions) error {
		if len(specs) == 0 {
			return errors.New("veritas: WithCorpus needs at least one session spec")
		}
		o.corpus = specs
		return nil
	}
}

// WithMatrix sets the ABR × buffer-size what-if matrix: one arm per
// (algorithm, buffer) pair, named "<abr>-<buf>s".
func WithMatrix(abrs []string, buffers []float64) CampaignOption {
	return func(o *campaignOptions) error {
		if len(abrs) == 0 || len(buffers) == 0 {
			return errors.New("veritas: matrix needs at least one ABR and one buffer size")
		}
		seenABR := make(map[string]bool)
		for _, a := range abrs {
			ok := false
			for _, k := range engine.ABRs() {
				if a == k {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("veritas: unknown ABR %q (have %v)", a, engine.ABRs())
			}
			if seenABR[a] {
				return fmt.Errorf("veritas: ABR %q listed twice", a)
			}
			seenABR[a] = true
		}
		seenBuf := make(map[float64]bool)
		for _, b := range buffers {
			if b <= 0 {
				return fmt.Errorf("veritas: matrix buffer %g must be positive seconds", b)
			}
			if seenBuf[b] {
				// Duplicates collide on arm names ("bba-5s" twice) and
				// double-count every session in the aggregates.
				return fmt.Errorf("veritas: matrix buffer %g listed twice", b)
			}
			seenBuf[b] = true
		}
		o.abrs = abrs
		o.buffers = buffers
		return nil
	}
}

// WithArms replaces the ABR × buffer matrix with explicit arms (built
// by NewArm or by hand). Incompatible with WithMatrix.
func WithArms(arms ...FleetArm) CampaignOption {
	return func(o *campaignOptions) error {
		o.arms = arms
		o.armsSet = true
		return nil
	}
}

// WithWorkers sets the engine worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) CampaignOption {
	return func(o *campaignOptions) error {
		if n < 0 {
			return fmt.Errorf("veritas: workers %d is negative (0 means GOMAXPROCS)", n)
		}
		o.workers = n
		return nil
	}
}

// WithSamples sets the Veritas posterior sample count K (default 5).
func WithSamples(k int) CampaignOption {
	return func(o *campaignOptions) error {
		if k <= 0 {
			return fmt.Errorf("veritas: samples %d must be positive (the paper uses 5)", k)
		}
		o.samples = k
		return nil
	}
}

// WithShard restricts execution to shard index of count: only corpus
// sessions whose index i satisfies i mod count == index are run. This
// is the multi-process dispatch primitive — n processes, each built
// with WithShard(i, n) and its own WithStore directory, together
// compute exactly the sessions one unsharded process would, because
// the partition is by corpus index and every session keeps the index
// (hence the derived seed) it has in the unsharded run. Fold the
// per-shard stores back into one corpus with FoldShards; the folded
// report is byte-identical to the single-process report.
//
// Sharding partitions execution, not results: the campaign fingerprint
// (campaign.json) is the same for every shard, while each shard store
// additionally records its slice in shard.json, and a writable open
// under a different shard assignment is refused.
func WithShard(index, count int) CampaignOption {
	return func(o *campaignOptions) error {
		if count < 1 {
			return fmt.Errorf("veritas: shard count %d must be at least 1", count)
		}
		if index < 0 || index >= count {
			return fmt.Errorf("veritas: shard index %d out of range [0, %d)", index, count)
		}
		o.shardIndex = index
		o.shardCount = count
		return nil
	}
}

// WithSeed sets the base seed every trace, jitter and abduction seed in
// the campaign derives from.
func WithSeed(seed int64) CampaignOption {
	return func(o *campaignOptions) error {
		o.seed = seed
		return nil
	}
}

// WithStore persists per-session results to the given store directory
// as workers finish them, making the campaign durable, resumable and
// servable. For scenario-mix campaigns (no WithCorpus, WithArms or
// WithDeployedABR — functions cannot be fingerprinted) the store
// records a fingerprint of every result-shaping option
// (campaign.json) and later opens refuse a store written under
// different settings; with caller-supplied pieces, store coherence is
// the caller's to manage.
func WithStore(dir string) CampaignOption {
	return func(o *campaignOptions) error {
		if dir == "" {
			return errors.New("veritas: WithStore needs a directory")
		}
		o.storeDir = dir
		return nil
	}
}

// WithReadOnlyStore opens the campaign store for queries only: Run and
// Resume fail, Serve and Report answer from the store as of open time.
// This is how a serving process attaches to a store a campaign may
// still be appending to.
func WithReadOnlyStore() CampaignOption {
	return func(o *campaignOptions) error {
		o.readOnly = true
		return nil
	}
}

// WithWatch attaches to a store another process is still writing and
// tails it: the campaign opens the store in watch mode (read-only,
// tolerant of the directory not existing yet) and every query first
// picks up rows appended since the last one — so Serve answers
// /v1/report and the series endpoints live, mid-campaign, without
// restarts. Run and Resume fail, as with WithReadOnlyStore; unlike it,
// the corpus a query sees keeps growing. Requires WithStore.
func WithWatch() CampaignOption {
	return func(o *campaignOptions) error {
		o.watch = true
		o.readOnly = true
		return nil
	}
}

// WithWatchInterval rate-limits the watch-mode tail refresh: at most
// one store re-check per interval, however many queries arrive (the
// default 0 re-checks on every query). Only meaningful with WithWatch.
func WithWatchInterval(d time.Duration) CampaignOption {
	return func(o *campaignOptions) error {
		if d < 0 {
			return fmt.Errorf("veritas: watch interval %v is negative", d)
		}
		o.watchInterval = d
		return nil
	}
}

// WithSegmentBytes caps a store segment's size before appends rotate to
// a fresh file (default store.DefaultSegmentBytes).
func WithSegmentBytes(n int64) CampaignOption {
	return func(o *campaignOptions) error {
		if n < 0 {
			return fmt.Errorf("veritas: segment bytes %d is negative", n)
		}
		o.segmentBytes = n
		return nil
	}
}

// WithReadCache sizes the serving layer's in-process read cache of
// decoded sessions (0 picks the default 256, negative disables).
func WithReadCache(entries int) CampaignOption {
	return func(o *campaignOptions) error {
		o.readCache = entries
		return nil
	}
}

// WithResume makes Run skip every session already present in the store,
// keeping corpus indices — hence seeds — stable, so a resumed campaign
// computes exactly what an uninterrupted one would have. Requires
// WithStore.
func WithResume() CampaignOption {
	return func(o *campaignOptions) error {
		o.resume = true
		return nil
	}
}

// WithSink streams every completed session result to an additional
// sink, after the store (if any). Put is called from worker goroutines
// and must be safe for concurrent use; its first error aborts the run.
func WithSink(sink FleetSink) CampaignOption {
	return func(o *campaignOptions) error {
		if sink == nil {
			return errors.New("veritas: WithSink(nil)")
		}
		o.sinks = append(o.sinks, sink)
		return nil
	}
}

// WithProgress calls fn once per completed session, from worker
// goroutines, in completion order. fn must be safe for concurrent use.
func WithProgress(fn func(FleetSessionResult)) CampaignOption {
	return func(o *campaignOptions) error {
		o.onResult = fn
		return nil
	}
}

// WithProgressCounts calls fn once per completed session with the
// count completed so far and the total this run will execute (the
// corpus minus any resume skips and out-of-shard sessions) — the
// lightweight progress hook a shard worker streams back to the
// dispatch supervisor. fn is called from worker goroutines and must be
// safe for concurrent use; each call carries a distinct done value but
// calls may be observed out of order.
func WithProgressCounts(fn func(done, total int)) CampaignOption {
	return func(o *campaignOptions) error {
		if fn == nil {
			return errors.New("veritas: WithProgressCounts(nil)")
		}
		o.onProgress = fn
		return nil
	}
}

// WithKeepAbductions retains each session's posterior in its result.
// Off by default: posteriors are large, and fleet-scale runs only need
// the aggregates.
func WithKeepAbductions() CampaignOption {
	return func(o *campaignOptions) error {
		o.keepAbductions = true
		return nil
	}
}

// WithoutMemoization disables the engine's per-session emission cache
// (used by benchmarks to measure its effect).
func WithoutMemoization() CampaignOption {
	return func(o *campaignOptions) error {
		o.disableCache = true
		return nil
	}
}

// WithoutTelemetry disables the campaign's metrics registry: no stage
// timers, counters, or cache fold-ins are recorded, Telemetry returns
// an empty snapshot, and /metrics on the serving layer carries only
// serve-side request metrics. Telemetry never affects results either
// way — a determinism test pins reports byte-identical with it on and
// off — so this exists for benchmarks isolating instrumentation cost.
func WithoutTelemetry() CampaignOption {
	return func(o *campaignOptions) error {
		o.noTelemetry = true
		return nil
	}
}

// WithTracing sizes the campaign's tail sampler: the tracer retains
// the keep slowest successful session traces (plus every errored one,
// ring-bounded) for Campaign.Trace and the serving layer's /v1/trace.
// Tracing is on by default with keep = 32; this option only resizes
// the sample.
func WithTracing(keep int) CampaignOption {
	return func(o *campaignOptions) error {
		if keep <= 0 {
			return fmt.Errorf("veritas: trace keep %d must be positive (use WithoutTracing to disable)", keep)
		}
		o.traceKeep = keep
		return nil
	}
}

// WithoutTracing disables the campaign's span tracer: no session,
// store or dispatch traces are recorded, Trace returns nothing, and
// /v1/trace serves an empty trace file. Tracing never affects results
// either way — a determinism test pins reports byte-identical with it
// on and off — so this exists for benchmarks isolating instrumentation
// cost.
func WithoutTracing() CampaignOption {
	return func(o *campaignOptions) error {
		o.noTracing = true
		return nil
	}
}

// WithDispatchStatus serves the dispatcher's live status API on addr
// for the duration of a Dispatch: GET /v1/status (per-shard progress,
// restarts, merged telemetry as JSON) and GET /metrics (the supervisor
// registry merged with every worker's latest snapshot, as Prometheus
// text). The listener binds when Dispatch starts and closes when it
// returns; a bind failure fails the dispatch fast.
func WithDispatchStatus(addr string) CampaignOption {
	return func(o *campaignOptions) error {
		if addr == "" {
			return errors.New("veritas: WithDispatchStatus needs a listen address")
		}
		o.dispatchStatus = addr
		return nil
	}
}

// Campaign is a batch causal-query campaign: a corpus of sessions, a
// matrix of what-if arms, and the run/persistence/serving machinery
// around them. Build one with NewCampaign; the zero value is not
// usable. Methods are safe for concurrent use, but only one Run,
// Resume or Results may execute at a time.
type Campaign struct {
	opt campaignOptions
	reg *telemetry.Registry // nil with WithoutTelemetry
	trc *tracing.Tracer     // nil with WithoutTracing

	mu      sync.Mutex
	corpus  []FleetSpec
	arms    []FleetArm
	st      *FleetStore
	last    *FleetResult
	running bool
	// workerTraces holds each shard's last streamed notable-trace set
	// after a Dispatch, so Trace keeps serving the fleet-wide view.
	workerTraces [][]tracing.Trace
}

// NewCampaign builds a campaign from functional options and validates
// their combination up front, before any corpus is built or worker
// started. The zero-option campaign mirrors the engine defaults: every
// scenario × 8 sessions, no arms, GOMAXPROCS workers, 5 posterior
// samples, no persistence.
func NewCampaign(opts ...CampaignOption) (*Campaign, error) {
	var o campaignOptions
	for _, opt := range opts {
		if opt == nil {
			return nil, errors.New("veritas: nil CampaignOption")
		}
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.resume && o.storeDir == "" {
		return nil, errors.New("veritas: WithResume needs WithStore: there is nowhere to resume from")
	}
	if o.watch && o.storeDir == "" {
		return nil, errors.New("veritas: WithWatch needs WithStore")
	}
	if o.readOnly && o.storeDir == "" {
		return nil, errors.New("veritas: WithReadOnlyStore needs WithStore")
	}
	if o.watchInterval > 0 && !o.watch {
		return nil, errors.New("veritas: WithWatchInterval needs WithWatch")
	}
	if o.armsSet && len(o.abrs) > 0 {
		return nil, errors.New("veritas: WithArms and WithMatrix are mutually exclusive")
	}
	if o.corpus != nil &&
		(o.scenarios != nil || o.sessionsPer != 0 || o.deployedBuffer != 0 || o.newDeployedABR != nil) {
		return nil, errors.New("veritas: WithCorpus replaces the scenario mix; drop WithScenarios/WithSessions/WithDeployedABR/WithDeployedBuffer")
	}
	if o.noTracing && o.traceKeep > 0 {
		return nil, errors.New("veritas: WithTracing and WithoutTracing are mutually exclusive")
	}
	c := &Campaign{opt: o}
	if !o.noTracing {
		keep := o.traceKeep
		if keep == 0 {
			keep = tracing.DefaultKeep
		}
		c.trc = tracing.New(keep)
	}
	if !o.noTelemetry {
		c.reg = telemetry.NewRegistry()
		// The shared transition-power cache keeps process-global
		// counters; fold them in rather than double-counting. (They are
		// process-wide, so overlapping campaigns in one process each
		// report the shared totals.)
		c.reg.RegisterFunc("veritas_powers_cache_hits_total", telemetry.CounterFunc, func() float64 {
			h, _ := mathx.SharedPowerStats()
			return float64(h)
		})
		c.reg.RegisterFunc("veritas_powers_cache_misses_total", telemetry.CounterFunc, func() float64 {
			_, m := mathx.SharedPowerStats()
			return float64(m)
		})
	}
	return c, nil
}

// Telemetry captures the campaign's metrics registry: engine stage
// latencies and throughput, store append/fsync/recovery counters,
// cache fold-ins, and — during a Dispatch — supervisor-side shard
// gauges. The snapshot is plain data (JSON-ready, Prometheus-renderable
// via WritePrometheus, additively mergeable). With WithoutTelemetry it
// is empty.
func (c *Campaign) Telemetry() TelemetrySnapshot {
	return c.reg.Snapshot()
}

// Trace returns the campaign's tail-sampled notable traces, slowest
// first: the keep slowest successful sessions (see WithTracing) plus
// every errored one, each with its nested stage spans. After a
// Dispatch it is the fleet-wide view — the supervisor's own traces
// merged with every worker's last streamed set. With WithoutTracing it
// is empty.
func (c *Campaign) Trace() []CampaignTrace {
	c.mu.Lock()
	workers := c.workerTraces
	c.mu.Unlock()
	sets := make([][]tracing.Trace, 0, 1+len(workers))
	sets = append(sets, c.trc.Traces())
	sets = append(sets, workers...)
	return tracing.Merge(c.trc.Keep(), sets...)
}

// WriteTrace renders Trace as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one timeline row per
// trace, stage spans nested inside. This is what `fleet -trace` writes
// and what GET /v1/trace serves.
func (c *Campaign) WriteTrace(w io.Writer) error {
	return tracing.WriteChrome(w, c.Trace())
}

// corpusConfig maps the scenario-mix options onto the engine's corpus
// builder.
func (c *Campaign) corpusConfig() engine.CorpusConfig {
	return engine.CorpusConfig{
		Scenarios:   c.opt.scenarios,
		SessionsPer: c.opt.sessionsPer,
		NumChunks:   c.opt.chunks,
		BufferCap:   c.opt.deployedBuffer,
		NewABR:      c.opt.newDeployedABR,
		Seed:        c.opt.seed,
	}
}

// materialize builds (and caches) the corpus and arm matrix.
func (c *Campaign) materialize() ([]FleetSpec, []FleetArm, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.corpus == nil {
		if c.opt.corpus != nil {
			c.corpus = c.opt.corpus
		} else {
			corpus, err := engine.BuildCorpus(c.corpusConfig())
			if err != nil {
				return nil, nil, err
			}
			c.corpus = corpus
		}
	}
	if c.arms == nil {
		switch {
		case c.opt.armsSet:
			c.arms = c.opt.arms
		case len(c.opt.abrs) > 0:
			arms, err := engine.BuildMatrix(c.corpusConfig(), c.opt.abrs, c.opt.buffers)
			if err != nil {
				return nil, nil, err
			}
			c.arms = arms
		default:
			c.arms = []FleetArm{}
		}
	}
	return c.corpus, c.arms, nil
}

// Corpus returns the campaign's materialized session specs.
func (c *Campaign) Corpus() ([]FleetSpec, error) {
	corpus, _, err := c.materialize()
	return corpus, err
}

// Arms returns the campaign's materialized what-if arms.
func (c *Campaign) Arms() ([]FleetArm, error) {
	_, arms, err := c.materialize()
	return arms, err
}

// campaignFingerprint is the JSON shape of the store's campaign.json:
// every option that shapes results. The field set (and the indented
// encoding) is kept bit-compatible with the fingerprint cmd/fleet wrote
// before the Campaign API existed, so pre-existing stores resume under
// the new binary.
type campaignFingerprint struct {
	Scenarios   []string
	SessionsPer int
	Chunks      int
	Samples     int
	Seed        int64
	Buffer      float64
	ABRs        []string
	Buffers     []float64
}

// fingerprints returns the acceptable campaign.json forms, most
// canonical first, or nil when the corpus, arms or deployed ABR are
// caller-supplied — a Go function cannot be serialized, so the options
// then cannot prove two runs equal and store coherence is the caller's
// to manage.
//
// Sharding (WithShard) is deliberately absent from the fingerprint:
// it partitions which sessions a process executes, never what any
// session computes, so every shard of a campaign — and the folded
// whole — carries the same campaign.json. The shard assignment itself
// lives in shard.json (see checkShardMeta).
//
// The first form is written into fresh stores and is byte-compatible
// with what pre-Campaign binaries wrote: the scenario list exactly as
// given, null when defaulted. Because an explicit list naming every
// scenario in default order computes the identical campaign, that case
// yields a second acceptable form with the list flipped to null (and
// vice versa), so stores written either way resume under either
// spelling.
func (c *Campaign) fingerprints() [][]byte {
	if c.opt.corpus != nil || c.opt.armsSet || c.opt.newDeployedABR != nil {
		return nil
	}
	fp := campaignFingerprint{
		Scenarios:   c.opt.scenarios,
		SessionsPer: c.opt.sessionsPer,
		Chunks:      c.opt.chunks,
		Samples:     c.opt.samples,
		Seed:        c.opt.seed,
		Buffer:      c.opt.deployedBuffer,
		ABRs:        c.opt.abrs,
		Buffers:     c.opt.buffers,
	}
	// Normalize to effective defaults so an explicit WithSessions(8)
	// and the default fingerprint identically — they compute the same
	// campaign.
	if fp.SessionsPer == 0 {
		fp.SessionsPer = 8
	}
	if fp.Samples == 0 {
		fp.Samples = 5
	}
	if fp.Buffer == 0 {
		fp.Buffer = 5
	}
	marshal := func(fp campaignFingerprint) []byte {
		b, err := json.MarshalIndent(fp, "", "  ")
		if err != nil {
			return nil
		}
		return b
	}
	out := [][]byte{marshal(fp)}
	switch {
	case fp.Scenarios == nil:
		fp.Scenarios = engine.Scenarios()
		out = append(out, marshal(fp))
	case scenariosAreDefault(fp.Scenarios):
		fp.Scenarios = nil
		out = append(out, marshal(fp))
	}
	return out
}

// scenariosAreDefault reports whether names spells out the default
// scenario mix in default order — the only explicit list equivalent to
// omitting WithScenarios (order shapes corpus indices, hence seeds).
func scenariosAreDefault(names []string) bool {
	all := engine.Scenarios()
	if len(names) != len(all) {
		return false
	}
	for i, s := range all {
		if names[i] != s {
			return false
		}
	}
	return true
}

// Store opens (or returns the already-open) campaign store. Campaigns
// built without WithStore have none and get an error.
func (c *Campaign) Store() (*FleetStore, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ensureStoreLocked()
}

func (c *Campaign) ensureStoreLocked() (*FleetStore, error) {
	if c.st != nil {
		return c.st, nil
	}
	if c.opt.storeDir == "" {
		return nil, errors.New("veritas: campaign has no store (use WithStore)")
	}
	opt := store.Options{
		SegmentBytes: c.opt.segmentBytes,
		ReadOnly:     c.opt.readOnly,
		Telemetry:    c.reg,
		Tracer:       c.trc,
	}
	if c.opt.watch {
		// Watch mode tails whatever campaign owns the directory;
		// fingerprint and shard checks are the writer's discipline, not
		// the tailing reader's (the directory may not even exist yet).
		st, err := store.OpenWatch(c.opt.storeDir, opt)
		if err != nil {
			return nil, err
		}
		c.st = st
		return st, nil
	}
	var fps [][]byte
	if !c.opt.readOnly {
		fps = c.fingerprints()
	}
	if len(fps) == 0 {
		fps = [][]byte{nil}
	}
	var st *store.Store
	var err error
	for _, fp := range fps {
		// The first form is canonical (it is what a fresh store gets);
		// later forms only matter against an existing store that spelt
		// the same campaign differently.
		st, err = store.OpenCampaign(c.opt.storeDir, opt, fp)
		if err == nil || !errors.Is(err, store.ErrCampaignMismatch) {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	if !c.opt.readOnly {
		if err := c.checkShardMeta(st); err != nil {
			st.Close()
			return nil, err
		}
	}
	c.st = st
	return st, nil
}

// checkShardMeta enforces the shard discipline on a writable store:
// a sharded campaign stamps (or verifies) shard.json, and any open
// under a different shard assignment — including an unsharded open of
// a shard store — is refused, because it would mix differently
// partitioned runs in one directory. Read-only opens skip the check:
// inspecting or serving a single shard's store is legitimate.
func (c *Campaign) checkShardMeta(st *store.Store) error {
	have, ok, err := store.ReadShardMeta(st.Dir())
	if err != nil {
		return err
	}
	want := store.ShardMeta{Index: c.opt.shardIndex, Count: c.opt.shardCount}
	sharded := c.opt.shardCount > 1
	switch {
	case ok && !sharded:
		return fmt.Errorf("veritas: %s holds shard %d/%d of a campaign; reopen it with WithShard(%d, %d) or fold the shards with FoldShards",
			st.Dir(), have.Index, have.Count, have.Index, have.Count)
	case ok && (have != want):
		return fmt.Errorf("veritas: %s holds shard %d/%d, not shard %d/%d; each shard needs its own store directory",
			st.Dir(), have.Index, have.Count, want.Index, want.Count)
	case !ok && sharded:
		if st.Len() > 0 {
			// Stamping an existing unsharded store would rebrand its
			// full-campaign rows as one shard's and lock out the
			// unsharded opens that wrote them.
			return fmt.Errorf("veritas: %s already holds %d sessions from an unsharded campaign; a shard needs a fresh store directory",
				st.Dir(), st.Len())
		}
		return store.WriteShardMeta(st.Dir(), want)
	}
	return nil
}

// engineConfig maps the execution options onto the engine.
func (c *Campaign) engineConfig() engine.Config {
	return engine.Config{
		Workers:        c.opt.workers,
		Samples:        c.opt.samples,
		Seed:           c.opt.seed,
		ShardIndex:     c.opt.shardIndex,
		ShardCount:     c.opt.shardCount,
		DisableCache:   c.opt.disableCache,
		KeepAbductions: c.opt.keepAbductions,
		OnResult:       c.opt.onResult,
		OnProgress:     c.opt.onProgress,
		Telemetry:      c.reg,
		Tracer:         c.trc,
	}
}

// prepare materializes corpus and arms, opens the store, and assembles
// the engine config (sink chain + resume skip set) for one execution.
func (c *Campaign) prepare(resume bool) ([]FleetSpec, []FleetArm, engine.Config, error) {
	var zero engine.Config
	if c.opt.readOnly {
		if c.opt.watch {
			return nil, nil, zero, errors.New("veritas: campaign store is in watch mode (drop WithWatch to run)")
		}
		return nil, nil, zero, errors.New("veritas: campaign store is read-only (drop WithReadOnlyStore to run)")
	}
	corpus, arms, err := c.materialize()
	if err != nil {
		return nil, nil, zero, err
	}
	cfg := c.engineConfig()
	sinks := make([]FleetSink, 0, 1+len(c.opt.sinks))
	if c.opt.storeDir != "" {
		st, err := c.Store()
		if err != nil {
			return nil, nil, zero, err
		}
		sinks = append(sinks, st)
		if resume {
			skip := make(map[string]bool)
			for _, k := range st.Keys() {
				skip[k] = true
			}
			cfg.Skip = skip
		}
	}
	sinks = append(sinks, c.opt.sinks...)
	switch len(sinks) {
	case 0:
	case 1:
		cfg.Sink = sinks[0]
	default:
		cfg.Sink = multiSink(sinks)
	}
	return corpus, arms, cfg, nil
}

// begin marks an execution in flight; end clears it.
func (c *Campaign) begin() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return errors.New("veritas: campaign is already running")
	}
	c.running = true
	return nil
}

func (c *Campaign) end(res *FleetResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.running = false
	if res != nil {
		c.last = res
	}
}

// Run executes the campaign: every corpus session through the full
// pipeline (simulate Setting A, abduct, replay every arm, answer
// interventional queries), across the worker pool, streaming to the
// store and any sinks. With WithResume, sessions already stored are
// skipped. Results are deterministic in the options, independent of
// the worker count.
func (c *Campaign) Run(ctx context.Context) (*FleetResult, error) {
	return c.run(ctx, c.opt.resume)
}

// Resume is Run with the resume behavior forced on: sessions already
// in the store are skipped, whatever the options said. It requires
// WithStore.
func (c *Campaign) Resume(ctx context.Context) (*FleetResult, error) {
	if c.opt.storeDir == "" {
		return nil, errors.New("veritas: Resume needs WithStore: there is nowhere to resume from")
	}
	return c.run(ctx, true)
}

func (c *Campaign) run(ctx context.Context, resume bool) (*FleetResult, error) {
	if err := c.begin(); err != nil {
		return nil, err
	}
	var res *FleetResult
	defer func() { c.end(res) }()
	corpus, arms, cfg, err := c.prepare(resume)
	if err != nil {
		return nil, err
	}
	res, err = engine.Run(ctx, cfg, corpus, arms)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Results executes the campaign like Run but returns a streaming,
// completion-order iterator of compact per-session rows, so callers
// never hold the full corpus in memory — no session logs, posteriors
// or per-session results are retained anywhere:
//
//	stream := c.Results(ctx)
//	for stream.Next() {
//		row := stream.Row()
//		...
//	}
//	if err := stream.Err(); err != nil { ... }
//
// The iterator must be drained or closed; an abandoned iterator pins
// the campaign's worker pool until ctx is cancelled, after which the
// campaign frees itself even if the iterator is never touched again.
func (c *Campaign) Results(ctx context.Context) *ResultStream {
	if err := c.begin(); err != nil {
		return &ResultStream{done: true, err: err}
	}
	corpus, arms, cfg, err := c.prepare(c.opt.resume)
	if err != nil {
		c.end(nil)
		return &ResultStream{done: true, err: err}
	}
	streamCtx, cancel := context.WithCancel(ctx)
	rows, wait := engine.Stream(streamCtx, cfg, corpus, arms)
	var (
		once    sync.Once
		res     *FleetResult
		joinErr error
	)
	join := func() (*FleetResult, error) {
		once.Do(func() {
			res, joinErr = wait()
			c.end(res)
		})
		return res, joinErr
	}
	// Release the campaign as soon as the engine run ends, whether the
	// consumer drained the stream, closed it, or abandoned it and
	// cancelled ctx — an abandoned iterator must not wedge the
	// campaign (or its store handle) forever.
	go join()
	return &ResultStream{rows: rows, cancel: cancel, wait: join}
}

// ResultStream iterates a running campaign's per-session rows in
// completion order. It is not safe for concurrent use.
type ResultStream struct {
	rows   <-chan FleetRow
	wait   func() (*FleetResult, error)
	cancel context.CancelFunc

	row    FleetRow
	res    *FleetResult
	err    error
	done   bool
	closed bool
}

// Next advances to the next completed session, blocking until one
// finishes. It returns false when the campaign ends (or fails — check
// Err).
func (s *ResultStream) Next() bool {
	if s.done {
		return false
	}
	row, ok := <-s.rows
	if !ok {
		s.finish()
		return false
	}
	s.row = row
	return true
}

// Row returns the row Next advanced to.
func (s *ResultStream) Row() FleetRow { return s.row }

// Err returns the campaign error, if any, once Next has returned false.
func (s *ResultStream) Err() error { return s.err }

// Result returns the completed run (aggregator, cache and throughput
// stats; Sessions is intentionally empty on the streaming path) once
// Next has returned false, and nil before that.
func (s *ResultStream) Result() *FleetResult { return s.res }

// Close abandons the stream: the campaign is cancelled, in-flight
// workers drain, and the cancellation itself is not reported as an
// error. Close is idempotent and safe after Next returned false.
func (s *ResultStream) Close() {
	if s.done {
		return
	}
	s.closed = true
	s.cancel()
	for range s.rows {
		// Drain so workers parked on the unbuffered channel exit.
	}
	s.finish()
}

func (s *ResultStream) finish() {
	if s.done {
		return
	}
	s.done = true
	if s.wait != nil {
		s.res, s.err = s.wait()
	}
	if s.cancel != nil {
		s.cancel()
	}
	if s.closed && errors.Is(s.err, context.Canceled) {
		s.err = nil
	}
}

// Report computes the campaign's aggregate report. With a store it is
// rebuilt from what was persisted — covering prior (resumed-over) runs
// too, byte-identical to the in-RAM aggregation of an uninterrupted
// campaign; without one it aggregates the last Run.
func (c *Campaign) Report() (*FleetReport, error) {
	agg, err := c.aggregator()
	if err != nil {
		return nil, err
	}
	return agg.Report(), nil
}

func (c *Campaign) aggregator() (*engine.Aggregator, error) {
	if c.opt.storeDir != "" {
		st, err := c.Store()
		if err != nil {
			return nil, err
		}
		if !c.opt.readOnly {
			if err := st.Sync(); err != nil {
				return nil, err
			}
		}
		return st.Aggregate()
	}
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()
	if last == nil {
		return nil, errors.New("veritas: campaign has not run (and has no store to report from)")
	}
	return last.Agg, nil
}

// WriteReport renders the campaign's aggregate report as aligned text:
// the store-backed corpus report when the campaign persists (plus the
// engine stats of the last run, if one ran in this process), or the
// last run's fleet report otherwise. This is exactly what cmd/fleet
// prints.
func (c *Campaign) WriteReport(w io.Writer) error {
	if c.opt.storeDir == "" {
		c.mu.Lock()
		last := c.last
		c.mu.Unlock()
		if last == nil {
			return errors.New("veritas: campaign has not run")
		}
		return last.WriteReport(w)
	}
	agg, err := c.aggregator()
	if err != nil {
		return err
	}
	st, err := c.Store()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "== corpus report: %d sessions stored in %s ==\n", st.Len(), c.opt.storeDir); err != nil {
		return err
	}
	if err := agg.WriteAggregate(w); err != nil {
		return err
	}
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()
	if last != nil {
		return last.WriteEngineStats(w)
	}
	return nil
}

// Handler returns the HTTP query API over the campaign's store: list
// sessions and scenarios, fetch per-session what-if results, and the
// aggregate report family (/v1/report plus cdf, series, percentiles)
// served from incremental partial aggregates with generation-keyed
// ETags, read-cached per WithReadCache. With WithWatch the handler
// tails the store before answering, throttled by WithWatchInterval.
func (c *Campaign) Handler() (http.Handler, error) {
	st, err := c.Store()
	if err != nil {
		return nil, err
	}
	return serve.New(st,
		serve.WithCacheEntries(c.opt.readCache),
		serve.WithTelemetry(c.reg),
		serve.WithTracer(c.trc),
		// The campaign-merged view (own traces + any dispatched workers'
		// streamed sets), not just the serve-local tracer's.
		serve.WithTraceSource(c.Trace),
		serve.WithWatchInterval(c.opt.watchInterval),
	), nil
}

// Serve serves the campaign's store over HTTP on addr until ctx is
// cancelled, then drains in-flight requests for up to five seconds.
// Attach to a store another process is still writing with
// WithReadOnlyStore (a fixed snapshot) or WithWatch (a live tail).
func (c *Campaign) Serve(ctx context.Context, addr string) error {
	h, err := c.Handler()
	if err != nil {
		return err
	}
	return serveHTTP(ctx, addr, h)
}

// WatchServe serves a live view of a store another process is still
// writing: the handler tails the store before answering, so /v1/report
// and friends track the running campaign. It requires WithWatch — the
// method exists so "am I actually watching?" fails loudly at the call
// site instead of silently serving a frozen snapshot.
func (c *Campaign) WatchServe(ctx context.Context, addr string) error {
	if !c.opt.watch {
		return errors.New("veritas: WatchServe requires WithWatch")
	}
	return c.Serve(ctx, addr)
}

// Close releases the campaign's store handle, if one was opened. The
// campaign remains inspectable but can no longer run, report or serve.
// Close refuses while a Run, Resume or Results is in flight — closing
// the store under active workers would abort the run mid-append;
// cancel the run's context (or drain the result stream) first.
func (c *Campaign) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return errors.New("veritas: campaign is running; cancel or drain it before Close")
	}
	if c.st == nil {
		return nil
	}
	err := c.st.Close()
	c.st = nil
	return err
}

// multiSink fans completed sessions out to several sinks in order; the
// first error aborts the run.
type multiSink []FleetSink

func (m multiSink) Put(r FleetSessionResult) error {
	for _, s := range m {
		if err := s.Put(r); err != nil {
			return err
		}
	}
	return nil
}
