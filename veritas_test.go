package veritas

import (
	"math"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	gt, err := GenerateTrace(DefaultTraceConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC(), MaxChunks: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Log.Records) != 80 {
		t.Fatalf("session logged %d chunks", len(sess.Log.Records))
	}
	abd, err := Abduct(sess.Log, AbductionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w := WhatIf{NewABR: NewBBA}
	outcome, err := Counterfactual(abd, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcome.Samples) != 5 {
		t.Fatalf("outcome has %d samples, want 5", len(outcome.Samples))
	}
	truth, err := Oracle(gt, w)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := outcome.SSIMRange()
	if lo > hi {
		t.Errorf("SSIM range inverted: %v > %v", lo, hi)
	}
	// The Veritas range should land near the oracle; the Baseline need
	// not. Allow generous slack — this is a smoke test, the tight
	// comparisons live in the experiments.
	if truth.AvgSSIM < lo-0.02 || truth.AvgSSIM > hi+0.02 {
		t.Errorf("oracle SSIM %v far outside Veritas range [%v, %v]", truth.AvgSSIM, lo, hi)
	}
}

func TestRunSessionValidation(t *testing.T) {
	if _, err := RunSession(SessionConfig{ABR: NewMPC()}); err == nil {
		t.Error("missing trace should error")
	}
	if _, err := RunSession(SessionConfig{Trace: ConstantTrace(5)}); err == nil {
		t.Error("missing ABR should error")
	}
}

func TestCounterfactualValidation(t *testing.T) {
	gt := ConstantTrace(5)
	sess, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC(), MaxChunks: 30})
	if err != nil {
		t.Fatal(err)
	}
	abd, err := Abduct(sess.Log, AbductionConfig{NumSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Counterfactual(abd, WhatIf{}); err == nil {
		t.Error("WhatIf without ABR factory should error")
	}
	if _, err := Oracle(gt, WhatIf{}); err == nil {
		t.Error("Oracle without ABR factory should error")
	}
}

func TestBaselineFacade(t *testing.T) {
	sess, err := RunSession(SessionConfig{Trace: ConstantTrace(6), ABR: NewMPC(), MaxChunks: 50})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(sess.Log)
	if err != nil {
		t.Fatal(err)
	}
	horizon := sess.Log.Records[len(sess.Log.Records)-1].End
	if m := base.Mean(horizon); m >= 6 {
		t.Errorf("baseline mean %v should underestimate the 6 Mbps truth", m)
	}
}

func TestPredictNextChunkTime(t *testing.T) {
	sess, err := RunSession(SessionConfig{Trace: ConstantTrace(5), ABR: NewMPC(), MaxChunks: 60})
	if err != nil {
		t.Fatal(err)
	}
	abd, err := Abduct(sess.Log, AbductionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	small := PredictNextChunkTime(abd, 1, 100e3)
	large := PredictNextChunkTime(abd, 1, 4e6)
	if small <= 0 || large <= 0 || math.IsInf(large, 0) {
		t.Fatalf("implausible predictions: small %v, large %v", small, large)
	}
	if large <= small {
		t.Errorf("larger chunk should take longer: %v vs %v", large, small)
	}
}

func TestABRFactories(t *testing.T) {
	v := DefaultVideo(1)
	for _, alg := range []ABR{NewMPC(), NewBBA(), NewBOLA(), NewRandomABR(1), NewFixedABR(2)} {
		sess, err := RunSession(SessionConfig{Trace: ConstantTrace(5), ABR: alg, Video: v, MaxChunks: 20})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if sess.Metrics.NumChunks != 20 {
			t.Errorf("%s ran %d chunks", alg.Name(), sess.Metrics.NumChunks)
		}
	}
}

func TestHigherQualityVideo(t *testing.T) {
	hv := HigherQualityVideo(1)
	dv := DefaultVideo(1)
	if hv.Quality(0).Mbps <= dv.Quality(0).Mbps {
		t.Error("higher ladder floor should exceed the default floor")
	}
	if hv.NumChunks() != dv.NumChunks() {
		t.Error("ladder change altered chunk count")
	}
}

func TestFestiveFacade(t *testing.T) {
	sess, err := RunSession(SessionConfig{Trace: ConstantTrace(6), ABR: NewFestive(), MaxChunks: 40})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Metrics.NumChunks != 40 {
		t.Fatalf("festive session ran %d chunks", sess.Metrics.NumChunks)
	}
	if QoE(sess.Log, DefaultQoEWeights()) <= 0 {
		t.Errorf("QoE should be positive on a healthy 6 Mbps session")
	}
}

func TestGenerateTraceSetFacade(t *testing.T) {
	set, err := GenerateTraceSet(DefaultTraceConfig(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("got %d traces", len(set))
	}
}

func TestDefaultNetworkFacade(t *testing.T) {
	cfg := DefaultNetwork()
	if err := cfg.Validate(); err != nil {
		t.Errorf("DefaultNetwork invalid: %v", err)
	}
	if cfg.RTT != 0.160 {
		t.Errorf("testbed RTT = %v, want 0.160", cfg.RTT)
	}
}

func TestOutcomeRanges(t *testing.T) {
	sess, err := RunSession(SessionConfig{Trace: ConstantTrace(5), ABR: NewMPC(), MaxChunks: 40})
	if err != nil {
		t.Fatal(err)
	}
	abd, err := Abduct(sess.Log, AbductionConfig{NumSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Counterfactual(abd, WhatIf{NewABR: NewBOLA})
	if err != nil {
		t.Fatal(err)
	}
	for name, rangeFn := range map[string]func() (float64, float64){
		"rebuf":   out.RebufRange,
		"bitrate": out.BitrateRange,
	} {
		lo, hi := rangeFn()
		if lo > hi {
			t.Errorf("%s range inverted: %v > %v", name, lo, hi)
		}
	}
}

func TestPredictDownloadTimeFacade(t *testing.T) {
	sess, err := RunSession(SessionConfig{Trace: ConstantTrace(5), ABR: NewMPC(), MaxChunks: 40})
	if err != nil {
		t.Fatal(err)
	}
	abd, err := Abduct(sess.Log, AbductionConfig{NumSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	last := sess.Log.Records[len(sess.Log.Records)-1]
	got := PredictDownloadTime(abd, last.End+0.5, last.TCP, 1e6)
	if got <= 0 {
		t.Errorf("prediction %v should be positive", got)
	}
}

func TestPredictNextChunkTimeEmptyLog(t *testing.T) {
	// An abduction built by hand (the struct's fields are exported)
	// carries no session log; the prediction has no last chunk to
	// anchor to and must answer NaN instead of panicking on
	// Records[len-1].
	got := PredictNextChunkTime(&Abduction{}, 1, 1e6)
	if !math.IsNaN(got) {
		t.Errorf("empty-log prediction = %v, want NaN", got)
	}
}
