package veritas

// Facade-level coverage of the fleet layer. The engine's own contract
// (worker-count determinism, cache accounting, cancellation) is tested
// exhaustively in internal/engine; these tests pin the public surface.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFleetFacade(t *testing.T) {
	ccfg := CorpusConfig{SessionsPer: 1, NumChunks: 30, Seed: 1}
	corpus, err := BuildCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != len(FleetScenarios()) {
		t.Fatalf("corpus has %d sessions, want one per scenario (%d)", len(corpus), len(FleetScenarios()))
	}
	arms, err := FleetMatrix(ccfg, []string{"bba", "mpc"}, []float64{5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 4 {
		t.Fatalf("matrix has %d arms, want 4", len(arms))
	}

	res, err := RunFleet(context.Background(), FleetConfig{Workers: 2, Samples: 2, Seed: 1}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != len(corpus) {
		t.Fatalf("got %d session results, want %d", len(res.Sessions), len(corpus))
	}
	for _, s := range res.Sessions {
		if len(s.Arms) != len(arms) {
			t.Errorf("%s: %d arm outcomes, want %d", s.ID, len(s.Arms), len(arms))
		}
		for _, oc := range s.Arms {
			if !oc.HasTruth {
				t.Errorf("%s/%s: synthetic corpus should have oracle outcomes", s.ID, oc.Name)
			}
			if len(oc.Samples) != 2 {
				t.Errorf("%s/%s: %d samples, want 2", s.ID, oc.Name, len(oc.Samples))
			}
		}
	}
	// Single-pass inference evaluates the emission table once, so the
	// cache sees traffic but hits only when chunks share a TCP state;
	// the accounting invariant is what the facade pins.
	if res.Cache.Lookups() == 0 {
		t.Error("emission cache saw no traffic")
	}
	if res.Cache.Hits+res.Cache.Misses != res.Cache.Lookups() {
		t.Error("hits + misses != lookups")
	}
	var sb strings.Builder
	if err := res.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	for _, arm := range []string{"bba-5s", "bba-30s", "mpc-5s", "mpc-30s"} {
		if !strings.Contains(sb.String(), "arm: "+arm) {
			t.Errorf("report missing arm %s", arm)
		}
	}
}

func TestNewFleetArm(t *testing.T) {
	arm, err := NewFleetArm("bba", WhatIf{NewABR: NewBBA})
	if err != nil {
		t.Fatal(err)
	}
	if arm.Name != "bba" || arm.Setting.Video == nil || arm.Setting.BufferCap != 5 {
		t.Errorf("arm not defaulted: %+v", arm)
	}
	if _, err := NewFleetArm("bad", WhatIf{}); err == nil {
		t.Error("WhatIf without ABR should error")
	}
}

func TestFleetMatrixValidation(t *testing.T) {
	ccfg := CorpusConfig{NumChunks: 30}
	if _, err := FleetMatrix(ccfg, nil, []float64{5}); err == nil {
		t.Error("empty ABR list should error")
	}
	if _, err := FleetMatrix(ccfg, []string{"vhs"}, []float64{5}); err == nil {
		t.Error("unknown ABR should error")
	}
	if _, err := FleetMatrix(ccfg, []string{"bba"}, []float64{-1}); err == nil {
		t.Error("negative buffer should error")
	}
}

func TestStoreFacade(t *testing.T) {
	ccfg := CorpusConfig{SessionsPer: 1, NumChunks: 25, Seed: 2}
	corpus, err := BuildCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arms, err := FleetMatrix(ccfg, []string{"bba"}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir, FleetStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleet(context.Background(), FleetConfig{Workers: 2, Samples: 2, Seed: 1, Sink: st}, corpus, arms)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(corpus) {
		t.Fatalf("store holds %d sessions, want %d", st.Len(), len(corpus))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen read-only and check the HTTP layer returns the same
	// aggregate report JSON as the in-RAM aggregator.
	ro, err := OpenStore(dir, FleetStoreOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	srv := httptest.NewServer(NewStoreHandler(ro, 16))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Agg.Report())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("served report != in-RAM report\nwant %s\ngot  %s", want, got)
	}

	// Compaction keeps every session.
	merged := filepath.Join(t.TempDir(), "merged")
	n, err := MergeStores(merged, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(corpus) {
		t.Fatalf("MergeStores folded %d sessions, want %d", n, len(corpus))
	}
}
