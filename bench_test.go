package veritas

// One benchmark per paper figure: each bench regenerates the figure's
// table at QuickScale (same code path as the paper-scale run in
// cmd/experiments) and reports wall time per regeneration. Run with
//
//	go test -bench=. -benchmem
//
// plus micro-benchmarks for the pipeline's hot pieces (the EHMM
// inference, a full session simulation, and a full abduction).

import (
	"context"
	"fmt"
	"testing"

	"veritas/internal/abduction"
	"veritas/internal/experiments"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	s := experiments.QuickScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(id, s)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig2a(b *testing.B) { benchFigure(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { benchFigure(b, "fig2b") }
func BenchmarkFig2c(b *testing.B) { benchFigure(b, "fig2c") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }

// Ablation benches for the design choices DESIGN.md calls out.
func BenchmarkAblationTCPState(b *testing.B) { benchFigure(b, "abl-tcpstate") }
func BenchmarkAblationPrior(b *testing.B)    { benchFigure(b, "abl-prior") }
func BenchmarkAblationSigma(b *testing.B)    { benchFigure(b, "abl-sigma") }
func BenchmarkAblationEM(b *testing.B)       { benchFigure(b, "abl-em") }

// BenchmarkSession measures one full 300-chunk MPC session simulation.
func BenchmarkSession(b *testing.B) {
	gt, err := GenerateTrace(DefaultTraceConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	v := DefaultVideo(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC(), Video: v}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbduction measures the full inversion of a 300-chunk log:
// Viterbi + forward-backward + 5 posterior samples.
func BenchmarkAbduction(b *testing.B) {
	gt, err := GenerateTrace(DefaultTraceConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Abduct(sess.Log, AbductionConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterfactualReplay measures one what-if replay (a full
// session over an inferred trace).
func BenchmarkCounterfactualReplay(b *testing.B) {
	gt, err := GenerateTrace(DefaultTraceConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC()})
	if err != nil {
		b.Fatal(err)
	}
	abd, err := Abduct(sess.Log, AbductionConfig{NumSamples: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := WhatIf{NewABR: NewBBA}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Counterfactual(abd, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbductionScaling reports abduction cost as session length
// grows, exercising the O(N·S²) forward-backward recursion.
func BenchmarkAbductionScaling(b *testing.B) {
	gt, err := GenerateTrace(DefaultTraceConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := RunSession(SessionConfig{Trace: gt, ABR: NewMPC()})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{50, 100, 200, 300} {
		b.Run(fmt.Sprintf("chunks=%d", n), func(b *testing.B) {
			prefix := sess.Log.Prefix(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := abduction.Abduct(prefix, abduction.Config{NumSamples: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtSquareWave covers the square-wave extension experiment.
func BenchmarkExtSquareWave(b *testing.B) { benchFigure(b, "ext-square") }

// fleetBenchSetup builds the benchmark campaign: a 32-session
// scenario-diverse corpus (4 regimes × 8 sessions) with one what-if
// arm — the acceptance workload for engine throughput scaling.
func fleetBenchSetup(b *testing.B) ([]FleetSpec, []FleetArm) {
	b.Helper()
	ccfg := CorpusConfig{SessionsPer: 8, NumChunks: 60, Seed: 1}
	corpus, err := BuildCorpus(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	arms, err := FleetMatrix(ccfg, []string{"bba"}, []float64{5})
	if err != nil {
		b.Fatal(err)
	}
	return corpus, arms
}

// BenchmarkFleet measures batch causal-query throughput across worker
// counts. On multicore hardware throughput scales near-linearly until
// the core count; aggregates are byte-identical at every worker count
// (see engine.TestDeterministicAcrossWorkerCounts).
func BenchmarkFleet(b *testing.B) {
	corpus, arms := fleetBenchSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := FleetConfig{Workers: workers, Samples: 3, Seed: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunFleet(context.Background(), cfg, corpus, arms); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(corpus))*float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

// benchRow synthesizes one plausible store row (three posterior
// samples, one arm, truth attached) without running inference.
func benchRow(i int) FleetRow {
	m := Metrics{AvgSSIM: 0.9, RebufRatio: 0.01, AvgBitrateMbps: 2.5, NumChunks: 300}
	return FleetRow{
		Index:     i,
		ID:        fmt.Sprintf("bench-%06d", i),
		Scenario:  "bench",
		Simulated: true,
		SettingA:  m,
		Arms: []FleetArmOutcome{{
			Name:     "bba-5s",
			Baseline: m,
			Samples:  []Metrics{m, m, m},
			Truth:    m,
			HasTruth: true,
		}},
		Predictions: []float64{1.5},
	}
}

// BenchmarkStoreWrite measures streaming-persistence throughput: one
// checksummed, segmented append per completed session.
func BenchmarkStoreWrite(b *testing.B) {
	s, err := OpenStore(b.TempDir(), FleetStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchRow(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreQuery measures point lookups (decode + checksum verify)
// against a multi-segment store of 1000 sessions.
func BenchmarkStoreQuery(b *testing.B) {
	s, err := OpenStore(b.TempDir(), FleetStoreOptions{SegmentBytes: 1 << 18})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Append(benchRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%06d", (i*7919)%n)
		if _, ok, err := s.Get(id); !ok || err != nil {
			b.Fatalf("Get(%s): ok=%v err=%v", id, ok, err)
		}
	}
}

// BenchmarkFleetCache isolates the emission-memoization win: the same
// single-worker fleet with the cache on and off.
func BenchmarkFleetCache(b *testing.B) {
	corpus, arms := fleetBenchSetup(b)
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run("cache="+name, func(b *testing.B) {
			cfg := FleetConfig{Workers: 1, Samples: 3, Seed: 1, DisableCache: disable}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunFleet(context.Background(), cfg, corpus, arms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
